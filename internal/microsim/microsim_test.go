package microsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/memhier"
	"repro/internal/units"
	"repro/internal/workload"
)

func mcfLikePhase() workload.Phase {
	return workload.Phase{
		Name: "simplex", Alpha: 1.1,
		Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.024},
		Instructions: 1,
	}
}

func cpuPhase() workload.Phase {
	return workload.Phase{Name: "cpu", Alpha: 1.4, Instructions: 1, NonMemStallCyclesPerInstr: 0.1}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BlockSize = 0
	if bad.Validate() == nil {
		t.Error("zero block accepted")
	}
	bad = good
	bad.OverlapFactor = 0
	if bad.Validate() == nil {
		t.Error("zero overlap accepted")
	}
	bad = good
	bad.OverlapFactor = 1.5
	if bad.Validate() == nil {
		t.Error("overlap > 1 accepted")
	}
	bad = good
	bad.Hier.RefClock = 0
	if bad.Validate() == nil {
		t.Error("broken hierarchy accepted")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Run(cfg, mcfLikePhase(), 0, 1000); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := Run(cfg, mcfLikePhase(), units.GHz(1), 0); err == nil {
		t.Error("zero instructions accepted")
	}
	if _, err := Run(cfg, workload.Phase{}, units.GHz(1), 1); err == nil {
		t.Error("invalid phase accepted")
	}
}

// TestMicroMatchesAnalyticModel is the validation this package exists for:
// the Monte-Carlo execution agrees with the closed-form CPI to well under
// 1% for memory-bound and CPU-bound work across the frequency range.
func TestMicroMatchesAnalyticModel(t *testing.T) {
	cfg := DefaultConfig()
	const n = 2_000_000
	for _, phase := range []workload.Phase{mcfLikePhase(), cpuPhase()} {
		for _, f := range []units.Frequency{units.MHz(250), units.MHz(500), units.MHz(650), units.GHz(1)} {
			rel, err := RelativeError(cfg, phase, f, n)
			if err != nil {
				t.Fatal(err)
			}
			if rel > 0.005 {
				t.Errorf("%s at %v: micro vs analytic error %.4f > 0.5%%", phase.Name, f, rel)
			}
		}
	}
}

// TestMicroIPCFrequencyBehaviour: the micro-simulated IPC falls with
// frequency for memory-bound work (the saturation mechanism) and is flat
// for pure-CPU work.
func TestMicroIPCFrequencyBehaviour(t *testing.T) {
	cfg := DefaultConfig()
	const n = 1_000_000
	mem := mcfLikePhase()
	lo, err := Run(cfg, mem, units.MHz(500), n)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(cfg, mem, units.GHz(1), n)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo.IPC() > hi.IPC()) {
		t.Errorf("memory-bound IPC should fall with frequency: %v vs %v", lo.IPC(), hi.IPC())
	}
	// But wall-clock performance still rises (sub-linearly).
	if !(hi.Seconds(units.GHz(1)) < lo.Seconds(units.MHz(500))) {
		t.Error("higher frequency should still finish sooner")
	}

	cpu := cpuPhase()
	loc, _ := Run(cfg, cpu, units.MHz(500), n)
	hic, _ := Run(cfg, cpu, units.GHz(1), n)
	if math.Abs(loc.IPC()-hic.IPC()) > 1e-9 {
		t.Errorf("pure-CPU IPC should be frequency-invariant: %v vs %v", loc.IPC(), hic.IPC())
	}
}

// TestReferenceCountsMatchRates: the drawn reference counts converge to
// the phase's rates.
func TestReferenceCountsMatchRates(t *testing.T) {
	cfg := DefaultConfig()
	const n = 4_000_000
	res, err := Run(cfg, mcfLikePhase(), units.GHz(1), n)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  uint64
		want float64
	}{
		{"L2", res.L2Refs, 0.030 * n},
		{"L3", res.L3Refs, 0.006 * n},
		{"mem", res.MemRefs, 0.024 * n},
	}
	for _, c := range checks {
		rel := math.Abs(float64(c.got)-c.want) / c.want
		if rel > 0.01 {
			t.Errorf("%s refs %d vs expected %.0f (%.2f%% off)", c.name, c.got, c.want, rel*100)
		}
	}
}

// TestOverlapReducesCycles: memory-level parallelism (overlap < 1) can
// only speed things up, and the analytic model (overlap = 1) is the upper
// bound on cycles.
func TestOverlapReducesCycles(t *testing.T) {
	serial := DefaultConfig()
	overlapped := DefaultConfig()
	overlapped.OverlapFactor = 0.6
	const n = 500_000
	a, err := Run(serial, mcfLikePhase(), units.GHz(1), n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(overlapped, mcfLikePhase(), units.GHz(1), n)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cycles >= a.Cycles {
		t.Errorf("overlap did not reduce cycles: %v vs %v", b.Cycles, a.Cycles)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := Run(cfg, mcfLikePhase(), units.GHz(1), 100_000)
	b, _ := Run(cfg, mcfLikePhase(), units.GHz(1), 100_000)
	if a != b {
		t.Error("same seed diverged")
	}
	cfg.Seed = 2
	c, _ := Run(cfg, mcfLikePhase(), units.GHz(1), 100_000)
	if a == c {
		t.Error("different seeds identical (suspicious)")
	}
}

// Property: for any physical rates, the micro-simulated cycle count stays
// within a few percent of the analytic model even at small n.
func TestMicroAnalyticAgreementProperty(t *testing.T) {
	cfg := DefaultConfig()
	err := quick.Check(func(l2Raw, memRaw, fRaw uint16) bool {
		phase := workload.Phase{
			Name: "p", Alpha: 1.2, Instructions: 1,
			Rates: memhier.AccessRates{
				L2PerInstr:  float64(l2Raw%40) / 1000,
				MemPerInstr: float64(memRaw%30) / 1000,
			},
		}
		f := units.MHz(float64(fRaw%750) + 250)
		// At n = 1M the Monte-Carlo σ on total cycles is ≲1%, so a 4%
		// bound sits beyond 4σ.
		rel, err := RelativeError(cfg, phase, f, 1_000_000)
		return err == nil && rel < 0.04
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}
