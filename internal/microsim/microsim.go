// Package microsim is a discrete per-instruction-block simulator used to
// validate the analytic execution model the fast machine simulator and
// the predictor share. Where internal/machine computes cycles from the
// closed-form CPI expression, microsim executes a phase as a stream of
// instruction blocks whose cache behaviour is drawn stochastically
// (Bernoulli per-level reference draws at the phase's rates) and whose
// memory service times are summed individually — the Monte-Carlo ground
// truth the closed form is a mean-field approximation of.
//
// The validation tests assert the two agree to well under a percent over
// the whole frequency range and rate space, which is what justifies using
// the fast analytic machine everywhere else.
package microsim

import (
	"fmt"
	"math/rand"

	"repro/internal/memhier"
	"repro/internal/units"
	"repro/internal/workload"
)

// Result summarises one micro-simulation.
type Result struct {
	Instructions uint64
	Cycles       float64
	// Refs counts references serviced per level.
	L2Refs, L3Refs, MemRefs uint64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / r.Cycles
}

// Seconds returns the wall-clock time of the simulated stream at frequency
// f.
func (r Result) Seconds(f units.Frequency) float64 {
	return r.Cycles / f.Hz()
}

// Config parameterises the micro-simulation.
type Config struct {
	Hier memhier.Hierarchy
	// BlockSize is how many instructions share one random draw; 1 is the
	// purest model, larger blocks trade variance for speed.
	BlockSize uint64
	Seed      int64
	// OverlapFactor models memory-level parallelism: the fraction of each
	// reference's latency that is NOT hidden by out-of-order overlap.
	// 1 = fully serialised (the analytic model's assumption).
	OverlapFactor float64
}

// DefaultConfig matches the analytic model's assumptions.
func DefaultConfig() Config {
	return Config{Hier: memhier.P630(), BlockSize: 64, Seed: 1, OverlapFactor: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Hier.Validate(); err != nil {
		return err
	}
	if c.BlockSize == 0 {
		return fmt.Errorf("microsim: block size must be positive")
	}
	if c.OverlapFactor <= 0 || c.OverlapFactor > 1 {
		return fmt.Errorf("microsim: overlap factor %v out of (0,1]", c.OverlapFactor)
	}
	return nil
}

// Run executes n instructions of phase p at frequency f and returns the
// measured counts. Core work costs 1/α + nonMemStall cycles per
// instruction; each instruction independently references L2/L3/memory with
// the phase's per-instruction probabilities, and a reference stalls the
// core for its level's service time (converted to cycles at f).
func Run(cfg Config, p workload.Phase, f units.Frequency, n uint64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if f <= 0 {
		return Result{}, fmt.Errorf("microsim: frequency %v must be positive", f)
	}
	if n == 0 {
		return Result{}, fmt.Errorf("microsim: need at least one instruction")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.Hier
	corePerInstr := 1/p.Alpha + p.NonMemStallCyclesPerInstr
	cycPerL2 := h.CyclesAt(memhier.L2, f) * cfg.OverlapFactor
	cycPerL3 := h.CyclesAt(memhier.L3, f) * cfg.OverlapFactor
	cycPerMem := h.CyclesAt(memhier.DRAM, f) * cfg.OverlapFactor

	var res Result
	block := cfg.BlockSize
	for done := uint64(0); done < n; done += block {
		b := block
		if done+b > n {
			b = n - done
		}
		bf := float64(b)
		res.Cycles += corePerInstr * bf
		// Binomial draws per block (normal approximation would bias the
		// tails; direct Bernoulli summing keeps it exact and is fast
		// enough at these rates).
		l2 := binomial(rng, b, p.Rates.L2PerInstr)
		l3 := binomial(rng, b, p.Rates.L3PerInstr)
		mem := binomial(rng, b, p.Rates.MemPerInstr)
		res.L2Refs += l2
		res.L3Refs += l3
		res.MemRefs += mem
		res.Cycles += float64(l2)*cycPerL2 + float64(l3)*cycPerL3 + float64(mem)*cycPerMem
		res.Instructions += b
	}
	return res, nil
}

// binomial draws Binomial(n, p) by inversion for small n·p and by normal
// tail-safe summing otherwise; n here is a block size (≤ a few thousand),
// so direct Bernoulli summation is affordable and exact.
func binomial(rng *rand.Rand, n uint64, p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	var k uint64
	for i := uint64(0); i < n; i++ {
		if rng.Float64() < p {
			k++
		}
	}
	return k
}

// AnalyticCycles returns the closed-form cycle count the machine simulator
// would charge for the same work — the quantity Run validates.
func AnalyticCycles(h memhier.Hierarchy, p workload.Phase, f units.Frequency, n uint64) float64 {
	return p.TrueCyclesPerInstr(h, f.Hz(), 1) * float64(n)
}

// RelativeError runs the micro-simulation and returns |micro - analytic| /
// analytic on total cycles.
func RelativeError(cfg Config, p workload.Phase, f units.Frequency, n uint64) (float64, error) {
	res, err := Run(cfg, p, f, n)
	if err != nil {
		return 0, err
	}
	ana := AnalyticCycles(cfg.Hier, p, f, n)
	d := res.Cycles - ana
	if d < 0 {
		d = -d
	}
	return d / ana, nil
}
