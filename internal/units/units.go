// Package units provides strongly typed physical quantities used throughout
// the fvsst reproduction: frequency, power, voltage, energy and capacitance.
//
// The paper's scheduler converts between frequency settings, voltage levels
// and power values constantly; giving each its own type prevents the classic
// "watts where megahertz were expected" class of bug and gives every value a
// canonical SI base unit (Hz, W, V, J, F).
package units

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Frequency is a processor clock frequency in hertz.
type Frequency float64

// Common frequency scales.
const (
	Hertz     Frequency = 1
	Kilohertz Frequency = 1e3
	Megahertz Frequency = 1e6
	Gigahertz Frequency = 1e9
)

// MHz constructs a Frequency from a value expressed in megahertz.
func MHz(v float64) Frequency { return Frequency(v * 1e6) }

// GHz constructs a Frequency from a value expressed in gigahertz.
func GHz(v float64) Frequency { return Frequency(v * 1e9) }

// Hz returns the frequency in hertz as a plain float64.
func (f Frequency) Hz() float64 { return float64(f) }

// MHz returns the frequency expressed in megahertz.
func (f Frequency) MHz() float64 { return float64(f) / 1e6 }

// GHz returns the frequency expressed in gigahertz.
func (f Frequency) GHz() float64 { return float64(f) / 1e9 }

// Period returns the clock period in seconds. It returns +Inf for a zero
// frequency rather than panicking so idle/parked cores are representable.
func (f Frequency) Period() float64 {
	if f == 0 {
		return math.Inf(1)
	}
	return 1 / float64(f)
}

// String renders the frequency with a scale that keeps 2–4 significant
// digits, matching the paper's "750MHz" / "1.0GHz" style.
func (f Frequency) String() string {
	switch {
	case f >= Gigahertz:
		return trimFloat(f.GHz()) + "GHz"
	case f >= Megahertz:
		return trimFloat(f.MHz()) + "MHz"
	case f >= Kilohertz:
		return trimFloat(float64(f)/1e3) + "kHz"
	default:
		return trimFloat(float64(f)) + "Hz"
	}
}

// ParseFrequency parses strings such as "750MHz", "1.0 GHz" or "250000000".
// A bare number is interpreted as hertz.
func ParseFrequency(s string) (Frequency, error) {
	s = strings.TrimSpace(s)
	upper := strings.ToUpper(s)
	for _, sc := range []struct {
		suffix string
		mult   Frequency
	}{
		{"GHZ", Gigahertz},
		{"MHZ", Megahertz},
		{"KHZ", Kilohertz},
		{"HZ", Hertz},
	} {
		if strings.HasSuffix(upper, sc.suffix) {
			num := strings.TrimSpace(s[:len(s)-len(sc.suffix)])
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: parse frequency %q: %w", s, err)
			}
			return Frequency(v) * sc.mult, nil
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse frequency %q: %w", s, err)
	}
	return Frequency(v), nil
}

// Power is an electrical power in watts.
type Power float64

// Watts constructs a Power from a value expressed in watts.
func Watts(v float64) Power { return Power(v) }

// W returns the power in watts as a plain float64.
func (p Power) W() float64 { return float64(p) }

// KW returns the power expressed in kilowatts.
func (p Power) KW() float64 { return float64(p) / 1e3 }

// String renders the power in the paper's "140W" style.
func (p Power) String() string {
	if math.Abs(float64(p)) >= 1e3 {
		return trimFloat(p.KW()) + "kW"
	}
	return trimFloat(float64(p)) + "W"
}

// ParsePower parses strings such as "140W", "0.48 kW" or "75".
// A bare number is interpreted as watts.
func ParsePower(s string) (Power, error) {
	s = strings.TrimSpace(s)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "KW"):
		v, err := strconv.ParseFloat(strings.TrimSpace(s[:len(s)-2]), 64)
		if err != nil {
			return 0, fmt.Errorf("units: parse power %q: %w", s, err)
		}
		return Power(v * 1e3), nil
	case strings.HasSuffix(upper, "W"):
		v, err := strconv.ParseFloat(strings.TrimSpace(s[:len(s)-1]), 64)
		if err != nil {
			return 0, fmt.Errorf("units: parse power %q: %w", s, err)
		}
		return Power(v), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse power %q: %w", s, err)
	}
	return Power(v), nil
}

// Voltage is an electrical potential in volts.
type Voltage float64

// Volts constructs a Voltage from a value expressed in volts.
func Volts(v float64) Voltage { return Voltage(v) }

// V returns the voltage in volts as a plain float64.
func (v Voltage) V() float64 { return float64(v) }

// Squared returns v² in V², the quantity appearing in both terms of the
// paper's power equation P = C·V²·f + B·V².
func (v Voltage) Squared() float64 { return float64(v) * float64(v) }

// String renders the voltage in the paper's "1.3V" style.
func (v Voltage) String() string { return trimFloat(float64(v)) + "V" }

// Energy is an amount of energy in joules.
type Energy float64

// Joules constructs an Energy from a value expressed in joules.
func Joules(v float64) Energy { return Energy(v) }

// J returns the energy in joules as a plain float64.
func (e Energy) J() float64 { return float64(e) }

// WattHours returns the energy expressed in watt-hours.
func (e Energy) WattHours() float64 { return float64(e) / 3600 }

// String renders the energy with joule or kilojoule scale.
func (e Energy) String() string {
	if math.Abs(float64(e)) >= 1e3 {
		return trimFloat(float64(e)/1e3) + "kJ"
	}
	return trimFloat(float64(e)) + "J"
}

// EnergyOver returns the energy dissipated by a constant power p over a
// duration of seconds.
func EnergyOver(p Power, seconds float64) Energy {
	return Energy(float64(p) * seconds)
}

// Capacitance is an effective switched capacitance in farads, the C in the
// paper's dynamic power term C·V²·f.
type Capacitance float64

// Farads constructs a Capacitance from a value expressed in farads.
func Farads(v float64) Capacitance { return Capacitance(v) }

// F returns the capacitance in farads as a plain float64.
func (c Capacitance) F() float64 { return float64(c) }

// trimFloat formats a float with up to three decimals and trims trailing
// zeros so 750 prints as "750" and 1.3 as "1.3". Values too small for
// three decimals fall back to scientific notation rather than collapsing
// to "0".
func trimFloat(v float64) string {
	if v != 0 && math.Abs(v) < 0.001 {
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// FrequencySet is an ascending, duplicate-free list of the discrete
// frequency settings a processor supports — the set F = f₀ … f_max of the
// paper's scheduling algorithm (Figure 3).
type FrequencySet []Frequency

// NewFrequencySet copies, sorts and deduplicates the given frequencies.
// Non-positive entries are rejected.
func NewFrequencySet(fs ...Frequency) (FrequencySet, error) {
	if len(fs) == 0 {
		return nil, fmt.Errorf("units: frequency set must not be empty")
	}
	out := make(FrequencySet, 0, len(fs))
	for _, f := range fs {
		if f <= 0 {
			return nil, fmt.Errorf("units: frequency set entry %v must be positive", f)
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:1]
	for _, f := range out[1:] {
		if f != dedup[len(dedup)-1] {
			dedup = append(dedup, f)
		}
	}
	return dedup, nil
}

// MustFrequencySet is NewFrequencySet for static tables; it panics on error.
func MustFrequencySet(fs ...Frequency) FrequencySet {
	set, err := NewFrequencySet(fs...)
	if err != nil {
		panic(err)
	}
	return set
}

// Min returns the lowest frequency in the set.
func (s FrequencySet) Min() Frequency { return s[0] }

// Max returns the highest frequency in the set — the paper's f_max.
func (s FrequencySet) Max() Frequency { return s[len(s)-1] }

// Contains reports whether f is one of the set's settings.
func (s FrequencySet) Contains(f Frequency) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= f })
	return i < len(s) && s[i] == f
}

// NextBelow returns the next lower setting than f (the paper's f_less) and
// true, or 0 and false when f is already the minimum or not in range.
func (s FrequencySet) NextBelow(f Frequency) (Frequency, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= f })
	if i == 0 {
		return 0, false
	}
	return s[i-1], true
}

// NextAbove returns the next higher setting than f and true, or 0 and false
// when f is already the maximum.
func (s FrequencySet) NextAbove(f Frequency) (Frequency, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] > f })
	if i >= len(s) {
		return 0, false
	}
	return s[i], true
}

// FloorOf returns the highest setting ≤ f and true, or 0 and false when f is
// below the minimum setting.
func (s FrequencySet) FloorOf(f Frequency) (Frequency, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] > f })
	if i == 0 {
		return 0, false
	}
	return s[i-1], true
}

// CeilOf returns the lowest setting ≥ f and true, or 0 and false when f is
// above the maximum setting.
func (s FrequencySet) CeilOf(f Frequency) (Frequency, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= f })
	if i >= len(s) {
		return 0, false
	}
	return s[i], true
}

// ClampTo returns the set member nearest to f, preferring the lower member
// on ties; f below the range clamps to Min and above to Max.
func (s FrequencySet) ClampTo(f Frequency) Frequency {
	if f <= s[0] {
		return s[0]
	}
	if f >= s[len(s)-1] {
		return s[len(s)-1]
	}
	hi, _ := s.CeilOf(f)
	lo, _ := s.FloorOf(f)
	if float64(f-lo) <= float64(hi-f) {
		return lo
	}
	return hi
}

// CapAt returns the subset of settings ≤ limit. An empty result means even
// the minimum setting exceeds the cap.
func (s FrequencySet) CapAt(limit Frequency) FrequencySet {
	i := sort.Search(len(s), func(i int) bool { return s[i] > limit })
	return s[:i]
}

// Index returns the position of f within the set, or -1.
func (s FrequencySet) Index(f Frequency) int {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= f })
	if i < len(s) && s[i] == f {
		return i
	}
	return -1
}

// Clone returns an independent copy of the set.
func (s FrequencySet) Clone() FrequencySet {
	out := make(FrequencySet, len(s))
	copy(out, s)
	return out
}

// String renders the set as "{600MHz 700MHz ... 1GHz}".
func (s FrequencySet) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
