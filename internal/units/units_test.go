package units

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestFrequencyConstructorsAndAccessors(t *testing.T) {
	f := MHz(750)
	if got := f.Hz(); got != 750e6 {
		t.Errorf("MHz(750).Hz() = %v, want 7.5e8", got)
	}
	if got := f.MHz(); got != 750 {
		t.Errorf("MHz(750).MHz() = %v, want 750", got)
	}
	if got := GHz(1).GHz(); got != 1 {
		t.Errorf("GHz(1).GHz() = %v, want 1", got)
	}
}

func TestFrequencyPeriod(t *testing.T) {
	if got := GHz(1).Period(); got != 1e-9 {
		t.Errorf("GHz(1).Period() = %v, want 1e-9", got)
	}
	if got := Frequency(0).Period(); !math.IsInf(got, 1) {
		t.Errorf("Frequency(0).Period() = %v, want +Inf", got)
	}
}

func TestFrequencyString(t *testing.T) {
	cases := []struct {
		f    Frequency
		want string
	}{
		{GHz(1), "1GHz"},
		{MHz(750), "750MHz"},
		{MHz(0.5), "500kHz"},
		{Frequency(60), "60Hz"},
		{GHz(1.5), "1.5GHz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.f), got, c.want)
		}
	}
}

func TestParseFrequency(t *testing.T) {
	cases := []struct {
		in   string
		want Frequency
	}{
		{"750MHz", MHz(750)},
		{"1.0 GHz", GHz(1)},
		{"1ghz", GHz(1)},
		{"250000000", Frequency(250e6)},
		{"32khz", Frequency(32e3)},
		{"60Hz", Frequency(60)},
	}
	for _, c := range cases {
		got, err := ParseFrequency(c.in)
		if err != nil {
			t.Errorf("ParseFrequency(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseFrequency(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "fastMHz", "MHz", "1.2.3GHz"} {
		if _, err := ParseFrequency(bad); err == nil {
			t.Errorf("ParseFrequency(%q): want error", bad)
		}
	}
}

func TestParseFrequencyRoundTrip(t *testing.T) {
	err := quick.Check(func(mhz uint16) bool {
		if mhz == 0 {
			return true
		}
		f := MHz(float64(mhz))
		got, err := ParseFrequency(f.String())
		return err == nil && math.Abs(got.Hz()-f.Hz()) < 1e3
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPowerBasics(t *testing.T) {
	p := Watts(140)
	if p.W() != 140 {
		t.Errorf("Watts(140).W() = %v", p.W())
	}
	if got := p.String(); got != "140W" {
		t.Errorf("String() = %q, want 140W", got)
	}
	if got := Watts(1500).String(); got != "1.5kW" {
		t.Errorf("Watts(1500).String() = %q, want 1.5kW", got)
	}
	if got := Watts(1500).KW(); got != 1.5 {
		t.Errorf("KW() = %v, want 1.5", got)
	}
}

func TestParsePower(t *testing.T) {
	cases := []struct {
		in   string
		want Power
	}{
		{"140W", 140},
		{"0.48 kW", 480},
		{"75", 75},
		{"9w", 9},
	}
	for _, c := range cases {
		got, err := ParsePower(c.in)
		if err != nil {
			t.Errorf("ParsePower(%q): %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-9 {
			t.Errorf("ParsePower(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParsePower("watts"); err == nil {
		t.Error("ParsePower(watts): want error")
	}
}

func TestVoltage(t *testing.T) {
	v := Volts(1.3)
	if v.V() != 1.3 {
		t.Errorf("V() = %v", v.V())
	}
	if got := v.Squared(); math.Abs(got-1.69) > 1e-12 {
		t.Errorf("Squared() = %v, want 1.69", got)
	}
	if got := v.String(); got != "1.3V" {
		t.Errorf("String() = %q", got)
	}
}

func TestEnergy(t *testing.T) {
	e := EnergyOver(Watts(100), 36)
	if e.J() != 3600 {
		t.Errorf("EnergyOver(100W, 36s) = %v J, want 3600", e.J())
	}
	if e.WattHours() != 1 {
		t.Errorf("WattHours() = %v, want 1", e.WattHours())
	}
	if got := Joules(500).String(); got != "500J" {
		t.Errorf("Joules(500).String() = %q", got)
	}
	if got := Joules(2500).String(); got != "2.5kJ" {
		t.Errorf("Joules(2500).String() = %q", got)
	}
}

func paperSet(t *testing.T) FrequencySet {
	t.Helper()
	set, err := NewFrequencySet(
		GHz(1.0), MHz(900), MHz(800), MHz(700), MHz(600),
	)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestNewFrequencySetSortsAndDedups(t *testing.T) {
	set, err := NewFrequencySet(MHz(800), MHz(600), MHz(800), GHz(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("len = %d, want 3 (deduped)", len(set))
	}
	if !sort.SliceIsSorted(set, func(i, j int) bool { return set[i] < set[j] }) {
		t.Error("set not sorted ascending")
	}
	if set.Min() != MHz(600) || set.Max() != GHz(1) {
		t.Errorf("Min/Max = %v/%v", set.Min(), set.Max())
	}
}

func TestNewFrequencySetRejectsBadInput(t *testing.T) {
	if _, err := NewFrequencySet(); err == nil {
		t.Error("empty set: want error")
	}
	if _, err := NewFrequencySet(MHz(-5)); err == nil {
		t.Error("negative frequency: want error")
	}
	if _, err := NewFrequencySet(0); err == nil {
		t.Error("zero frequency: want error")
	}
}

func TestFrequencySetNeighbours(t *testing.T) {
	set := paperSet(t)
	if f, ok := set.NextBelow(MHz(800)); !ok || f != MHz(700) {
		t.Errorf("NextBelow(800MHz) = %v,%v, want 700MHz,true", f, ok)
	}
	if _, ok := set.NextBelow(MHz(600)); ok {
		t.Error("NextBelow(min): want ok=false")
	}
	if f, ok := set.NextAbove(MHz(900)); !ok || f != GHz(1) {
		t.Errorf("NextAbove(900MHz) = %v,%v, want 1GHz,true", f, ok)
	}
	if _, ok := set.NextAbove(GHz(1)); ok {
		t.Error("NextAbove(max): want ok=false")
	}
}

func TestFrequencySetFloorCeil(t *testing.T) {
	set := paperSet(t)
	if f, ok := set.FloorOf(MHz(850)); !ok || f != MHz(800) {
		t.Errorf("FloorOf(850MHz) = %v,%v", f, ok)
	}
	if f, ok := set.CeilOf(MHz(850)); !ok || f != MHz(900) {
		t.Errorf("CeilOf(850MHz) = %v,%v", f, ok)
	}
	if _, ok := set.FloorOf(MHz(100)); ok {
		t.Error("FloorOf below range: want ok=false")
	}
	if _, ok := set.CeilOf(GHz(2)); ok {
		t.Error("CeilOf above range: want ok=false")
	}
	// Exact member is both its own floor and ceiling.
	if f, _ := set.FloorOf(MHz(700)); f != MHz(700) {
		t.Errorf("FloorOf(member) = %v", f)
	}
	if f, _ := set.CeilOf(MHz(700)); f != MHz(700) {
		t.Errorf("CeilOf(member) = %v", f)
	}
}

func TestFrequencySetClampTo(t *testing.T) {
	set := paperSet(t)
	cases := []struct {
		in, want Frequency
	}{
		{MHz(100), MHz(600)},
		{GHz(3), GHz(1)},
		{MHz(840), MHz(800)},
		{MHz(860), MHz(900)},
		{MHz(850), MHz(800)}, // tie prefers lower
		{MHz(700), MHz(700)},
	}
	for _, c := range cases {
		if got := set.ClampTo(c.in); got != c.want {
			t.Errorf("ClampTo(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFrequencySetCapAt(t *testing.T) {
	set := paperSet(t)
	capped := set.CapAt(MHz(750))
	if len(capped) != 2 || capped.Max() != MHz(700) {
		t.Errorf("CapAt(750MHz) = %v", capped)
	}
	if got := set.CapAt(MHz(100)); len(got) != 0 {
		t.Errorf("CapAt below min = %v, want empty", got)
	}
	if got := set.CapAt(GHz(1)); len(got) != len(set) {
		t.Errorf("CapAt(max) dropped entries: %v", got)
	}
}

func TestFrequencySetIndexContains(t *testing.T) {
	set := paperSet(t)
	if i := set.Index(MHz(700)); i != 1 {
		t.Errorf("Index(700MHz) = %d, want 1", i)
	}
	if i := set.Index(MHz(750)); i != -1 {
		t.Errorf("Index(non-member) = %d, want -1", i)
	}
	if !set.Contains(MHz(900)) || set.Contains(MHz(950)) {
		t.Error("Contains misbehaves")
	}
}

func TestFrequencySetCloneIndependence(t *testing.T) {
	set := paperSet(t)
	clone := set.Clone()
	clone[0] = GHz(9)
	if set[0] == GHz(9) {
		t.Error("Clone shares backing array")
	}
}

func TestFrequencySetString(t *testing.T) {
	set := MustFrequencySet(MHz(600), GHz(1))
	if got := set.String(); got != "{600MHz 1GHz}" {
		t.Errorf("String() = %q", got)
	}
}

func TestMustFrequencySetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFrequencySet with no args: want panic")
		}
	}()
	MustFrequencySet()
}

// Property: for any frequency within range, ClampTo returns a member whose
// distance to the input is minimal over the whole set.
func TestClampToIsNearestProperty(t *testing.T) {
	set := MustFrequencySet(MHz(250), MHz(400), MHz(650), MHz(1000))
	err := quick.Check(func(raw uint16) bool {
		f := MHz(float64(raw%1200) + 1)
		got := set.ClampTo(f)
		best := math.Inf(1)
		for _, m := range set {
			if d := math.Abs(float64(m - f)); d < best {
				best = d
			}
		}
		return math.Abs(float64(got-f)) == best
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// Property: NextBelow∘NextAbove is identity for interior members.
func TestNeighbourInverseProperty(t *testing.T) {
	set := paperSet(t)
	for _, f := range set[:len(set)-1] {
		up, ok := set.NextAbove(f)
		if !ok {
			t.Fatalf("NextAbove(%v) failed", f)
		}
		down, ok := set.NextBelow(up)
		if !ok || down != f {
			t.Errorf("NextBelow(NextAbove(%v)) = %v", f, down)
		}
	}
}
