package units

import (
	"math"
	"testing"
)

// FuzzParseFrequency checks the parser never panics and that any
// successfully parsed value round-trips through String within rounding.
func FuzzParseFrequency(f *testing.F) {
	for _, seed := range []string{
		"750MHz", "1.0 GHz", "250000000", "32khz", "60Hz", "", "MHz",
		"-5GHz", "1e3MHz", "9999999GHz", "0.000001Hz", "1.2.3GHz", "NaNHz",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseFrequency(s)
		if err != nil {
			return
		}
		if math.IsNaN(float64(v)) {
			return // "NaN" parses via strconv; String handles it
		}
		if v <= 0 || math.IsInf(float64(v), 0) {
			return
		}
		// Round-trip within 0.1% (String keeps 3 decimals of the scaled
		// value).
		back, err := ParseFrequency(v.String())
		if err != nil {
			t.Fatalf("String() %q of parsed %q does not re-parse: %v", v.String(), s, err)
		}
		if rel := math.Abs(float64(back-v)) / float64(v); rel > 1e-3 {
			t.Fatalf("round trip %q → %v → %v drifted %.4f", s, v, back, rel)
		}
	})
}

// FuzzParsePower mirrors FuzzParseFrequency for watt values.
func FuzzParsePower(f *testing.F) {
	for _, seed := range []string{"140W", "0.48 kW", "75", "9w", "watts", "-3W", "1e2W"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParsePower(s)
		if err != nil {
			return
		}
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || v <= 0 {
			return
		}
		back, err := ParsePower(v.String())
		if err != nil {
			t.Fatalf("String() %q of parsed %q does not re-parse: %v", v.String(), s, err)
		}
		if rel := math.Abs(float64(back-v)) / float64(v); rel > 1e-3 {
			t.Fatalf("round trip %q → %v → %v drifted %.4f", s, v, back, rel)
		}
	})
}
