// Package optimal computes the true minimum-loss feasible frequency
// assignment for a scheduling-pass snapshot, as an exact comparator for
// the paper's greedy Step 2. The formulation follows the multiple-choice
// knapsack view of budget-constrained frequency selection (arXiv
// 1203.5160): each CPU i picks one table index idx_i ≤ Upper_i (its
// Step-1 desire), the predicted losses add, and the table powers must fit
// the budget:
//
//	minimise   Σ_i Loss(i, idx_i)
//	subject to Σ_i P(idx_i) ≤ Budget,   0 ≤ idx_i ≤ Upper_i.
//
// Solve runs a dynamic program over the Pareto frontier of exact
// (power, loss) prefix sums with an exact re-check of the winner, falling
// back to depth-first branch-and-bound when the frontier outgrows its cap
// (which only synthetic tables with irrational power spreads reach — real
// tables quantise to integer watts, keeping the frontier tiny). Both
// solvers accumulate losses and powers in CPU order, exactly like the
// exhaustive enumerator in internal/invariant, so on any instance both
// solvers and the enumerator agree on the optimal loss to the last bit —
// the differential tests pin this. EnergyOptimal is the unconstrained
// energy-per-instruction baseline of arXiv 1805.00998 for the same
// snapshot. See docs/optimality.md.
package optimal

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// Problem is one pass snapshot: the operating-point table, the power
// budget Step 2 had to meet, each CPU's Step-1 desired index (the upper
// bound Step 2 demotes from), and the predicted-loss surface. Loss must
// return 0 for CPUs without a usable prediction (idle or unobserved), the
// same convention Step 2 itself uses. IPC is only consulted by
// EnergyOptimal and may be nil otherwise.
type Problem struct {
	Table  *power.Table
	Budget units.Power
	Upper  []int
	Loss   func(cpu, fi int) float64
	IPC    func(cpu, fi int) float64
}

// FromGrid builds a Problem over a filled prediction grid, mapping
// invalid rows to zero loss exactly as Step 2 and the invariant checkers
// do. The grid's frequency set must be the table's (the scheduler
// guarantees this).
func FromGrid(g *perfmodel.PredGrid, upper []int, table *power.Table, budget units.Power) Problem {
	return Problem{
		Table:  table,
		Budget: budget,
		Upper:  upper,
		Loss: func(cpu, fi int) float64 {
			if !g.Valid(cpu) {
				return 0
			}
			return g.Loss(cpu, fi)
		},
		IPC: func(cpu, fi int) float64 {
			if !g.Valid(cpu) {
				return 0
			}
			return g.IPC(cpu, fi)
		},
	}
}

// Assignment is one solved frequency assignment. Loss and Power are the
// CPU-order sums over Idx — the same accumulation order every comparator
// in this repo uses, so equal assignments render to equal bytes.
type Assignment struct {
	Idx      []int
	Loss     float64
	Power    units.Power
	Feasible bool
	Method   string // "dp", "bb", "floor", "greedy" or "energy"
	States   int    // DP states kept or B&B nodes visited
}

// Limits bounds the solvers. MaxFrontier caps the DP's Pareto frontier
// per stage (beyond it Solve switches to branch-and-bound); MaxNodes caps
// the branch-and-bound search. Zero fields take the defaults.
type Limits struct {
	MaxFrontier int
	MaxNodes    int
}

const (
	// DefaultMaxFrontier comfortably covers real tables: integer-watt
	// powers give at most a few thousand distinct prefix sums.
	DefaultMaxFrontier = 1 << 16
	// DefaultMaxNodes bounds the branch-and-bound fallback; past it the
	// instance is declared too large rather than silently approximated.
	DefaultMaxNodes = 5_000_000
)

// ErrTooLarge reports an instance beyond both solvers' limits. Callers
// treat it like the enumerator's state cap: skip, never approximate.
var ErrTooLarge = errors.New("optimal: instance exceeds solver limits")

func (p *Problem) validate() error {
	if p.Table == nil {
		return errors.New("optimal: nil table")
	}
	if p.Loss == nil {
		return errors.New("optimal: nil loss function")
	}
	for i, u := range p.Upper {
		if u < 0 || u >= p.Table.Len() {
			return fmt.Errorf("optimal: cpu %d upper index %d outside table [0,%d)", i, u, p.Table.Len())
		}
	}
	return nil
}

// sums recomputes the CPU-order power and loss sums of an index vector.
func (p *Problem) sums(idx []int) (units.Power, float64) {
	var pow units.Power
	loss := 0.0
	for i, k := range idx {
		pow += p.Table.PowerAtIndex(k)
		loss += p.Loss(i, k)
	}
	return pow, loss
}

// Solve returns the minimum-loss feasible assignment with the default
// limits. When no assignment fits the budget — not even the all-floor one
// — it returns the floor assignment with Feasible=false, mirroring what
// Step 2 actuates in that case.
func Solve(p Problem) (Assignment, error) {
	return SolveLimits(p, Limits{})
}

// SolveLimits is Solve with explicit solver limits.
func SolveLimits(p Problem, lim Limits) (Assignment, error) {
	if err := p.validate(); err != nil {
		return Assignment{}, err
	}
	if lim.MaxFrontier <= 0 {
		lim.MaxFrontier = DefaultMaxFrontier
	}
	if lim.MaxNodes <= 0 {
		lim.MaxNodes = DefaultMaxNodes
	}
	n := len(p.Upper)
	idx := make([]int, n)
	if floorPow, floorLoss := p.sums(idx); floorPow > p.Budget {
		return Assignment{Idx: idx, Loss: floorLoss, Power: floorPow, Feasible: false, Method: "floor"}, nil
	}
	a, err := solveDP(&p, lim)
	if errors.Is(err, errFrontier) {
		a, err = solveBB(&p, lim)
	}
	if err != nil {
		return Assignment{}, err
	}
	// Exact re-check: the winner must reproduce the solver's sums bit for
	// bit when recomputed from scratch — this catches any bookkeeping bug
	// in the frontier or the search before a caller trusts the bound.
	pow, loss := p.sums(a.Idx)
	if pow != a.Power || math.Float64bits(loss) != math.Float64bits(a.Loss) || pow > p.Budget {
		return Assignment{}, fmt.Errorf("optimal: %s re-check failed: got (%v, %b), solver claimed (%v, %b)",
			a.Method, pow, loss, a.Power, a.Loss)
	}
	for i, k := range a.Idx {
		if k < 0 || k > p.Upper[i] {
			return Assignment{}, fmt.Errorf("optimal: %s re-check failed: cpu %d index %d outside [0,%d]",
				a.Method, i, k, p.Upper[i])
		}
	}
	return a, nil
}

// Greedy replays Step 2's published rule over the Problem — start at the
// desired indices, repeatedly demote the CPU whose next-lower point costs
// the least predicted loss, ties to the higher current index — and
// returns the assignment it reaches. It is the baseline every gap is
// measured against and is bit-compatible with fvsst.FitToBudgetGrid.
func Greedy(p Problem) Assignment {
	n := len(p.Upper)
	idx := make([]int, n)
	copy(idx, p.Upper)
	met := false
	for {
		var sum units.Power
		for i := 0; i < n; i++ {
			sum += p.Table.PowerAtIndex(idx[i])
		}
		if sum <= p.Budget {
			met = true
			break
		}
		best, bestLoss := -1, 0.0
		for i := 0; i < n; i++ {
			if idx[i] == 0 {
				continue
			}
			loss := p.Loss(i, idx[i]-1)
			if best < 0 || loss < bestLoss || (loss == bestLoss && idx[i] > idx[best]) {
				best, bestLoss = i, loss
			}
		}
		if best < 0 {
			break
		}
		idx[best]--
	}
	pow, loss := p.sums(idx)
	return Assignment{Idx: idx, Loss: loss, Power: pow, Feasible: met, Method: "greedy"}
}

// EnergyOptimal is the energy-optimal-configuration baseline (arXiv
// 1805.00998): each CPU independently picks the table index minimising
// predicted energy per instruction P(k)/(IPC(i,k)·f_k), ignoring both the
// budget and the Step-1 desire. CPUs without a usable prediction (IPC ≤ 0
// everywhere, or no IPC function) sit at the floor — with no work
// attributed, the least power is the least energy. Feasible reports
// whether the resulting draw happens to fit the budget; the baseline is
// not constrained by it.
func EnergyOptimal(p Problem) (Assignment, error) {
	if err := p.validate(); err != nil {
		return Assignment{}, err
	}
	n := len(p.Upper)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestEPI := 0, math.Inf(1)
		for k := 0; k < p.Table.Len(); k++ {
			ipc := 0.0
			if p.IPC != nil {
				ipc = p.IPC(i, k)
			}
			if ipc <= 0 {
				continue
			}
			epi := p.Table.PowerAtIndex(k).W() / (ipc * p.Table.FrequencyAtIndex(k).Hz())
			if epi < bestEPI {
				best, bestEPI = k, epi
			}
		}
		idx[i] = best
	}
	pow, loss := p.sums(idx)
	return Assignment{Idx: idx, Loss: loss, Power: pow, Feasible: pow <= p.Budget, Method: "energy"}, nil
}
