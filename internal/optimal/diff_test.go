package optimal_test

import (
	"repro/internal/invariant"
	"repro/internal/optimal"
)

// invariantBruteForce runs the independent exhaustive enumerator from
// internal/invariant over the same instance. The import lives in this
// file (invariant imports optimal, but an external test package closes
// the loop without a cycle) so the solvers are pinned against code they
// share nothing with beyond the accumulation-order convention.
func invariantBruteForce(p optimal.Problem, losses [][]float64) (float64, bool) {
	loss := func(cpu, fi int) float64 { return losses[cpu][fi] }
	return invariant.BruteForceOptimal(loss, p.Upper, p.Table, p.Budget)
}
