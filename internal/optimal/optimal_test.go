package optimal_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/optimal"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// randTable builds a valid nf-point table with non-integer power steps,
// so prefix power sums rarely collide and the DP frontier stays diverse —
// the adversarial regime for the exactness argument.
func randTable(rng *rand.Rand, nf int) *power.Table {
	pts := make([]power.OperatingPoint, nf)
	p := 0.0
	for i := 0; i < nf; i++ {
		p += 0.5 + rng.Float64()*50
		pts[i] = power.OperatingPoint{
			F: units.MHz(100 * float64(i+1)),
			V: units.Volts(1 + 0.1*float64(i)),
			P: units.Watts(p),
		}
	}
	return power.MustTable(pts)
}

// randProblem draws a random instance: up to maxCPU CPUs and maxFreq
// frequencies, arbitrary non-negative losses (some rows zeroed to mimic
// unpredicted CPUs), and a budget spanning infeasible to slack.
func randProblem(rng *rand.Rand, maxCPU, maxFreq int) (optimal.Problem, [][]float64) {
	n := 1 + rng.Intn(maxCPU)
	nf := 1 + rng.Intn(maxFreq)
	table := randTable(rng, nf)
	upper := make([]int, n)
	losses := make([][]float64, n)
	for i := range upper {
		upper[i] = rng.Intn(nf)
		losses[i] = make([]float64, nf)
		if rng.Intn(5) > 0 { // 1-in-5 rows stay all-zero ("no prediction")
			for k := range losses[i] {
				losses[i][k] = rng.Float64()
			}
		}
	}
	var floorPow, maxPow units.Power
	for _, u := range upper {
		floorPow += table.PowerAtIndex(0)
		maxPow += table.PowerAtIndex(u)
	}
	budget := floorPow.W()*0.9 + rng.Float64()*(maxPow.W()*1.1-floorPow.W()*0.9)
	return optimal.Problem{
		Table:  table,
		Budget: units.Watts(budget),
		Upper:  upper,
		Loss:   func(cpu, fi int) float64 { return losses[cpu][fi] },
	}, losses
}

func TestSolveEmpty(t *testing.T) {
	p := optimal.Problem{Table: power.PaperTable1(), Budget: units.Watts(0), Loss: func(int, int) float64 { return 0 }}
	a, err := optimal.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible || a.Loss != 0 || a.Power != 0 || len(a.Idx) != 0 {
		t.Fatalf("empty problem: got %+v", a)
	}
}

func TestSolveValidation(t *testing.T) {
	zero := func(int, int) float64 { return 0 }
	cases := []optimal.Problem{
		{Budget: units.Watts(1), Loss: zero},                                              // nil table
		{Table: power.PaperTable1(), Budget: units.Watts(1)},                              // nil loss
		{Table: power.PaperTable1(), Budget: units.Watts(1), Upper: []int{99}, Loss: zero}, // upper out of range
		{Table: power.PaperTable1(), Budget: units.Watts(1), Upper: []int{-1}, Loss: zero}, // negative upper
	}
	for i, p := range cases {
		if _, err := optimal.Solve(p); err == nil {
			t.Errorf("case %d: want validation error, got none", i)
		}
		if _, err := optimal.EnergyOptimal(p); err == nil {
			t.Errorf("case %d: EnergyOptimal: want validation error, got none", i)
		}
	}
}

func TestSolveInfeasibleFloors(t *testing.T) {
	table := power.PaperTable1()
	p := optimal.Problem{
		Table:  table,
		Budget: units.Watts(1), // below even one CPU's floor (9 W)
		Upper:  []int{5, 5},
		Loss:   func(cpu, fi int) float64 { return 1 - float64(fi)/10 },
	}
	a, err := optimal.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Feasible || a.Method != "floor" {
		t.Fatalf("want infeasible floor assignment, got %+v", a)
	}
	for i, k := range a.Idx {
		if k != 0 {
			t.Fatalf("cpu %d not floored: idx %d", i, k)
		}
	}
	g := optimal.Greedy(p)
	if g.Feasible {
		t.Fatalf("greedy claims feasible on infeasible budget: %+v", g)
	}
	for i, k := range g.Idx {
		if k != 0 {
			t.Fatalf("greedy cpu %d not floored: idx %d", i, k)
		}
	}
}

// TestSolveBeatsGreedyPlateau reproduces the canonical greedy failure:
// demoting by absolute next-step loss strands a CPU on a cheap plateau
// while one deeper demotion elsewhere was cheaper overall.
func TestSolveBeatsGreedyPlateau(t *testing.T) {
	table := power.MustTable([]power.OperatingPoint{
		{F: units.MHz(100), V: units.Volts(1.0), P: units.Watts(10)},
		{F: units.MHz(200), V: units.Volts(1.1), P: units.Watts(20)},
		{F: units.MHz(300), V: units.Volts(1.2), P: units.Watts(30)},
	})
	// Greedy demotes cpu0 first (0.02 beats 0.05), then cannot afford
	// cpu0's deep step (0.10) so it takes cpu1's shallow one, landing on
	// (1,1) with loss 0.07 — but demoting cpu1 twice reaches (2,0) at
	// loss 0.06. Losses stay monotone non-increasing in frequency.
	losses := [][]float64{
		{0.10, 0.02, 0},
		{0.06, 0.05, 0},
	}
	p := optimal.Problem{
		Table:  table,
		Budget: units.Watts(40),
		Upper:  []int{2, 2},
		Loss:   func(cpu, fi int) float64 { return losses[cpu][fi] },
	}
	g := optimal.Greedy(p)
	sol, err := optimal.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || !g.Feasible {
		t.Fatalf("both must be feasible: sol=%+v greedy=%+v", sol, g)
	}
	if sol.Loss > g.Loss {
		t.Fatalf("optimal loss %g worse than greedy %g", sol.Loss, g.Loss)
	}
	if sol.Loss >= g.Loss {
		t.Fatalf("instance no longer separates greedy (%g) from optimal (%g); pick a sharper one", g.Loss, sol.Loss)
	}
}

func TestEnergyOptimalArgmin(t *testing.T) {
	table := power.MustTable([]power.OperatingPoint{
		{F: units.MHz(100), V: units.Volts(1.0), P: units.Watts(10)},
		{F: units.MHz(200), V: units.Volts(1.1), P: units.Watts(15)}, // best EPI for flat IPC
		{F: units.MHz(300), V: units.Volts(1.2), P: units.Watts(40)},
	})
	p := optimal.Problem{
		Table:  table,
		Budget: units.Watts(100),
		Upper:  []int{0, 2}, // upper must not cap the baseline
		Loss:   func(int, int) float64 { return 0 },
		IPC: func(cpu, fi int) float64 {
			if cpu == 1 {
				return 0 // unpredicted: floor
			}
			return 2.0
		},
	}
	a, err := optimal.EnergyOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	// cpu0: EPI = {10/(2·100M), 15/(2·200M), 40/(2·300M)} → index 1.
	if a.Idx[0] != 1 || a.Idx[1] != 0 {
		t.Fatalf("energy argmin: got %v, want [1 0]", a.Idx)
	}
	if a.Method != "energy" || !a.Feasible {
		t.Fatalf("unexpected assignment: %+v", a)
	}
}

func TestFromGridConventions(t *testing.T) {
	table := power.PaperTable1()
	var g perfmodel.PredGrid
	g.Reset(2, table.Frequencies())
	g.Fill(0, perfmodel.Decomposition{InvAlpha: 0.8, StallSecPerInstr: 1e-9})
	// cpu1 left unfilled: FromGrid must treat it as zero loss.
	upper := []int{table.Len() - 1, table.Len() - 1}
	p := optimal.FromGrid(&g, upper, table, units.Watts(200))
	if l := p.Loss(1, 0); l != 0 {
		t.Fatalf("unfilled row loss = %g, want 0", l)
	}
	if l := p.Loss(0, 0); l <= 0 {
		t.Fatalf("filled row floor loss = %g, want > 0", l)
	}
	if ipc := p.IPC(1, 0); ipc != 0 {
		t.Fatalf("unfilled row IPC = %g, want 0", ipc)
	}
	sol, err := optimal.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("200 W over two CPUs must be feasible: %+v", sol)
	}
	// The unpredicted CPU is free to demote; the predicted one carries all
	// the loss, so the optimum keeps cpu0 as high as the budget allows.
	if sol.Idx[0] < sol.Idx[1] {
		t.Fatalf("optimum demoted the predicted CPU below the free one: %v", sol.Idx)
	}
}

func TestSolveTooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, _ := randProblem(rng, 4, 8)
	if _, err := optimal.SolveLimits(p, optimal.Limits{MaxFrontier: 1, MaxNodes: 1}); err == nil {
		t.Fatal("want ErrTooLarge with MaxFrontier=1, MaxNodes=1, got nil")
	}
}

// TestDPStatesReported sanity-checks the reported search effort so the
// optbench runtime gate has a meaningful series to watch.
func TestDPStatesReported(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, _ := randProblem(rng, 4, 8)
	sol, err := optimal.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.States <= 0 {
		t.Fatalf("solver reported no states: %+v", sol)
	}
}

// TestDifferentialBruteForce is the satellite differential test: across
// 300 seeded random instances with ≤4 CPUs × ≤8 frequencies, the DP, the
// forced branch-and-bound, and invariant.BruteForceOptimal's exhaustive
// enumeration must agree on the optimal loss to the last bit, and on
// feasibility. The shared CPU-order accumulation makes bit equality the
// contract, not an accident — see docs/optimality.md.
func TestDifferentialBruteForce(t *testing.T) {
	feasible, infeasible, viaBB := 0, 0, 0
	for seed := int64(1); seed <= 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, losses := randProblem(rng, 4, 8)
		bfBest, bfFound := bruteForce(p, losses)

		sol, err := optimal.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		if sol.Feasible != bfFound {
			t.Fatalf("seed %d: Solve feasible=%v, brute force found=%v", seed, sol.Feasible, bfFound)
		}
		if !bfFound {
			infeasible++
			continue
		}
		feasible++
		if math.Float64bits(sol.Loss) != math.Float64bits(bfBest) {
			t.Fatalf("seed %d: dp loss %b != brute force %b", seed, sol.Loss, bfBest)
		}

		// Force the branch-and-bound path (a frontier cap of 1 trips it on
		// any instance whose frontier ever holds two states) and demand
		// the same bits from that solver too.
		bb, err := optimal.SolveLimits(p, optimal.Limits{MaxFrontier: 1})
		if err != nil {
			t.Fatalf("seed %d: SolveLimits(bb): %v", seed, err)
		}
		if math.Float64bits(bb.Loss) != math.Float64bits(bfBest) {
			t.Fatalf("seed %d: %s loss %b != brute force %b", seed, bb.Method, bb.Loss, bfBest)
		}
		if bb.Method == "bb" {
			viaBB++
		}
	}
	if feasible < 100 || infeasible < 10 {
		t.Fatalf("corpus imbalance: %d feasible, %d infeasible — regenerate the instance mix", feasible, infeasible)
	}
	if viaBB < feasible/2 {
		t.Fatalf("bb path exercised only %d of %d feasible instances", viaBB, feasible)
	}
}

// bruteForce adapts a Problem to invariant.BruteForceOptimal via a local
// wrapper kept in diff_test.go (which imports internal/invariant).
func bruteForce(p optimal.Problem, losses [][]float64) (float64, bool) {
	return invariantBruteForce(p, losses)
}
