package optimal

import (
	"math"

	"repro/internal/units"
)

// solveBB is the branch-and-bound fallback for instances whose Pareto
// frontier outgrows the DP cap (small N keeps the tree tractable). It
// searches CPUs in order, trying high indices first so the incumbent
// improves quickly, with two float-exact prunes:
//
//   - feasibility: extend the prefix power with the floor power of every
//     remaining CPU, in CPU order; if even that exceeds the budget, every
//     real extension does too (powers are positive and float addition is
//     monotone);
//   - bound: extend the prefix loss with each remaining CPU's minimum
//     loss over its allowed indices, in CPU order; every real extension's
//     loss is ≥ that sum, so a bound ≥ the incumbent cannot strictly
//     improve it.
//
// Both prunes compare values computed by the same left-to-right float
// sums a full evaluation would produce, so the search remains exact to
// the bit against exhaustive enumeration.
func solveBB(p *Problem, lim Limits) (Assignment, error) {
	n := len(p.Upper)
	// minLoss[i] = min over k ≤ Upper[i] of Loss(i,k); loss is typically
	// non-increasing in the index but the solver does not assume it.
	minLoss := make([]float64, n)
	for i := 0; i < n; i++ {
		m := math.Inf(1)
		for k := 0; k <= p.Upper[i]; k++ {
			if l := p.Loss(i, k); l < m {
				m = l
			}
		}
		minLoss[i] = m
	}
	floorP := p.Table.PowerAtIndex(0)
	bestLoss := math.Inf(1)
	var bestPow units.Power
	bestIdx := make([]int, n)
	idx := make([]int, n)
	nodes := 0
	var over bool

	var walk func(i int, pow units.Power, loss float64)
	walk = func(i int, pow units.Power, loss float64) {
		if over {
			return
		}
		nodes++
		if nodes > lim.MaxNodes {
			over = true
			return
		}
		if i == n {
			if pow <= p.Budget && loss < bestLoss {
				bestLoss, bestPow = loss, pow
				copy(bestIdx, idx)
			}
			return
		}
		remPow := pow
		for j := i; j < n; j++ {
			remPow += floorP
		}
		if remPow > p.Budget {
			return
		}
		remLoss := loss
		for j := i; j < n; j++ {
			remLoss += minLoss[j]
		}
		if remLoss >= bestLoss {
			return
		}
		for k := p.Upper[i]; k >= 0; k-- {
			idx[i] = k
			walk(i+1, pow+p.Table.PowerAtIndex(k), loss+p.Loss(i, k))
		}
	}
	walk(0, 0, 0)
	if over {
		return Assignment{}, ErrTooLarge
	}
	if math.IsInf(bestLoss, 1) {
		// Unreachable: SolveLimits verified the all-floor assignment fits.
		return Assignment{}, ErrTooLarge
	}
	return Assignment{
		Idx:      bestIdx,
		Loss:     bestLoss,
		Power:    bestPow,
		Feasible: true,
		Method:   "bb",
		States:   nodes,
	}, nil
}
