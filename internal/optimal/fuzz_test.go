package optimal_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/optimal"
	"repro/internal/units"
)

// FuzzOptimalAssign drives Solve over randomized instances and checks
// the three properties that make it a trustworthy comparator:
//
//  1. feasibility — a feasible result's power fits the budget and every
//     index respects its upper bound (the in-solver re-check enforces
//     the bits; the fuzz target re-asserts from outside);
//  2. never worse than greedy — the greedy assignment is in the feasible
//     set, so the optimum's loss cannot exceed it;
//  3. permutation invariance — relabelling CPUs changes only the float
//     accumulation order, so the optimal loss moves by rounding at most
//     (and feasibility not at all).
func FuzzOptimalAssign(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(5), 0.5)
	f.Add(int64(42), uint8(1), uint8(8), 0.0)
	f.Add(int64(7), uint8(6), uint8(3), 1.0)
	f.Add(int64(1234), uint8(4), uint8(16), 0.25)
	f.Add(int64(-9), uint8(8), uint8(2), 0.9)
	f.Fuzz(func(t *testing.T, seed int64, nCPU, nFreq uint8, budgetFrac float64) {
		n := 1 + int(nCPU)%8
		nf := 1 + int(nFreq)%10
		if math.IsNaN(budgetFrac) || math.IsInf(budgetFrac, 0) {
			budgetFrac = 0.5
		}
		budgetFrac = math.Mod(math.Abs(budgetFrac), 1.5)
		rng := rand.New(rand.NewSource(seed))
		table := randTable(rng, nf)
		upper := make([]int, n)
		losses := make([][]float64, n)
		for i := range upper {
			upper[i] = rng.Intn(nf)
			losses[i] = make([]float64, nf)
			for k := range losses[i] {
				losses[i][k] = rng.Float64()
			}
		}
		var floorPow, maxPow units.Power
		for _, u := range upper {
			floorPow += table.PowerAtIndex(0)
			maxPow += table.PowerAtIndex(u)
		}
		budget := units.Watts(floorPow.W()*0.9 + budgetFrac*(maxPow.W()*1.1-floorPow.W()*0.9))
		p := optimal.Problem{
			Table:  table,
			Budget: budget,
			Upper:  upper,
			Loss:   func(cpu, fi int) float64 { return losses[cpu][fi] },
		}

		sol, err := optimal.Solve(p)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if len(sol.Idx) != n {
			t.Fatalf("got %d indices for %d CPUs", len(sol.Idx), n)
		}
		var pow units.Power
		for i, k := range sol.Idx {
			if k < 0 || k > upper[i] {
				t.Fatalf("cpu %d index %d outside [0,%d]", i, k, upper[i])
			}
			pow += table.PowerAtIndex(k)
		}
		if sol.Feasible && pow > budget {
			t.Fatalf("feasible result draws %v over budget %v", pow, budget)
		}

		g := optimal.Greedy(p)
		if sol.Feasible != g.Feasible {
			t.Fatalf("Solve feasible=%v but greedy feasible=%v", sol.Feasible, g.Feasible)
		}
		if sol.Feasible && sol.Loss > g.Loss {
			t.Fatalf("optimum %g worse than greedy %g", sol.Loss, g.Loss)
		}

		// Permute CPUs: same instance, relabelled. Feasibility must match
		// exactly; the loss may move only by accumulation-order rounding.
		perm := rng.Perm(n)
		permUpper := make([]int, n)
		for i, from := range perm {
			permUpper[i] = upper[from]
		}
		pp := optimal.Problem{
			Table:  table,
			Budget: budget,
			Upper:  permUpper,
			Loss:   func(cpu, fi int) float64 { return losses[perm[cpu]][fi] },
		}
		psol, err := optimal.Solve(pp)
		if err != nil {
			t.Fatalf("Solve(permuted): %v", err)
		}
		if psol.Feasible != sol.Feasible {
			t.Fatalf("permutation flipped feasibility: %v vs %v", psol.Feasible, sol.Feasible)
		}
		if sol.Feasible {
			tol := 1e-9 * math.Max(1, math.Abs(sol.Loss))
			if math.Abs(psol.Loss-sol.Loss) > tol {
				t.Fatalf("permutation moved the optimum beyond rounding: %g vs %g", psol.Loss, sol.Loss)
			}
		}
	})
}
