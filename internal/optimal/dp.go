package optimal

import (
	"errors"
	"sort"

	"repro/internal/units"
)

// errFrontier is the internal signal that the Pareto frontier outgrew its
// cap and the caller should fall back to branch-and-bound.
var errFrontier = errors.New("optimal: dp frontier exceeded cap")

// state is one Pareto-optimal prefix: the exact CPU-order power and loss
// sums of a concrete partial assignment, plus enough to backtrack it.
type state struct {
	power  units.Power
	loss   float64
	prev   int32 // index into the previous stage's frontier
	choice int32 // table index chosen for this stage's CPU
}

// solveDP runs the Pareto-frontier dynamic program. Stage i extends every
// surviving prefix over CPUs 0..i-1 with each choice k ≤ Upper[i],
// accumulating power and loss in CPU order so each state's sums are the
// literal left-to-right float sums of a real assignment prefix — the same
// sums the brute-force enumerator computes. Dominance pruning (drop a
// prefix when another has ≤ power and ≤ loss) is exact because IEEE float
// addition is monotone: the dominating prefix stays ≤ under any shared
// suffix, for both the feasibility test and the final loss. Prefixes over
// budget are dropped because table powers are strictly positive, so no
// suffix can bring them back under. The minimum loss on the final
// frontier is therefore bit-identical to exhaustive enumeration.
func solveDP(p *Problem, lim Limits) (Assignment, error) {
	n := len(p.Upper)
	stages := make([][]state, n+1)
	stages[0] = []state{{prev: -1, choice: -1}}
	kept := 1
	cand := []state(nil)
	for i := 0; i < n; i++ {
		prevFrontier := stages[i]
		cand = cand[:0]
		for pi, ps := range prevFrontier {
			for k := 0; k <= p.Upper[i]; k++ {
				pow := ps.power + p.Table.PowerAtIndex(k)
				if pow > p.Budget {
					continue
				}
				cand = append(cand, state{
					power:  pow,
					loss:   ps.loss + p.Loss(i, k),
					prev:   int32(pi),
					choice: int32(k),
				})
			}
		}
		// Deterministic total order: power, then loss, then the canonical
		// (prev, choice) pair, so ties always keep the same witness.
		sort.Slice(cand, func(a, b int) bool {
			ca, cb := cand[a], cand[b]
			if ca.power != cb.power {
				return ca.power < cb.power
			}
			if ca.loss != cb.loss {
				return ca.loss < cb.loss
			}
			if ca.prev != cb.prev {
				return ca.prev < cb.prev
			}
			return ca.choice < cb.choice
		})
		frontier := cand[:0:0]
		bestLoss := 0.0
		for ci, c := range cand {
			if ci == 0 || c.loss < bestLoss {
				frontier = append(frontier, c)
				bestLoss = c.loss
			}
		}
		if len(frontier) > lim.MaxFrontier {
			return Assignment{}, errFrontier
		}
		stages[i+1] = frontier
		kept += len(frontier)
	}
	final := stages[n]
	if len(final) == 0 {
		// SolveLimits already handled the infeasible case; an empty final
		// frontier can only mean the floor fits but every extension was
		// dropped, which cannot happen (the all-floor path survives).
		return Assignment{}, errors.New("optimal: dp lost the floor assignment")
	}
	// Loss is strictly decreasing along the frontier, so the minimum sits
	// at the end; scan anyway so the invariant is not load-bearing.
	best := 0
	for si := range final {
		if final[si].loss < final[best].loss {
			best = si
		}
	}
	idx := make([]int, n)
	si := int32(best)
	for i := n - 1; i >= 0; i-- {
		s := stages[i+1][si]
		idx[i] = int(s.choice)
		si = s.prev
	}
	return Assignment{
		Idx:      idx,
		Loss:     final[best].loss,
		Power:    final[best].power,
		Feasible: true,
		Method:   "dp",
		States:   kept,
	}, nil
}
