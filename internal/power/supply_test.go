package power

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestMotivatingPlantCapacity(t *testing.T) {
	p := MotivatingPlant(0.5)
	if got := p.Capacity(); got.W() != 960 {
		t.Errorf("capacity = %v, want 960W (2×480W)", got)
	}
	if len(p.Supplies()) != 2 {
		t.Errorf("supplies = %d", len(p.Supplies()))
	}
}

func TestNewPlantValidation(t *testing.T) {
	if _, err := NewPlant(0, units.Watts(480)); err == nil {
		t.Error("zero ΔT accepted")
	}
	if _, err := NewPlant(1); err == nil {
		t.Error("no supplies accepted")
	}
	if _, err := NewPlant(1, units.Watts(-5)); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestFailAndRestoreSupply(t *testing.T) {
	p := MotivatingPlant(0.5)
	if err := p.FailSupply("PS0"); err != nil {
		t.Fatal(err)
	}
	if got := p.Capacity(); got.W() != 480 {
		t.Errorf("capacity after failure = %v, want 480W", got)
	}
	if err := p.FailSupply("PS0"); err == nil {
		t.Error("double failure accepted")
	}
	if err := p.FailSupply("PS9"); err == nil {
		t.Error("unknown supply accepted")
	}
	if err := p.RestoreSupply("PS0"); err != nil {
		t.Fatal(err)
	}
	if got := p.Capacity(); got.W() != 960 {
		t.Errorf("capacity after restore = %v", got)
	}
	if err := p.RestoreSupply("PS0"); err == nil {
		t.Error("restoring healthy supply accepted")
	}
	if err := p.RestoreSupply("nope"); err == nil {
		t.Error("restoring unknown supply accepted")
	}
}

// TestCascadeScenario replays §2: at T0 a supply fails; if the system is
// not under the new 480 W limit within ΔT the second supply fails too.
func TestCascadeScenario(t *testing.T) {
	const deltaT = 0.5
	p := MotivatingPlant(deltaT)
	load := units.Watts(746) // full system load

	if p.Observe(0, load) {
		t.Fatal("cascade with both supplies healthy")
	}
	if err := p.FailSupply("PS0"); err != nil {
		t.Fatal(err)
	}
	// Immediately after failure: overloaded but not yet cascaded.
	if p.Observe(0.1, load) {
		t.Fatal("cascaded before ΔT elapsed")
	}
	if got := p.OverloadedFor(); math.Abs(got-0) > 1e-12 {
		t.Errorf("OverloadedFor right at onset = %v", got)
	}
	if p.Observe(0.3, load) {
		t.Fatal("cascaded at 0.2s < ΔT")
	}
	// Past the deadline: cascade.
	if !p.Observe(0.7, load) {
		t.Fatal("no cascade after ΔT of overload")
	}
	if !p.Cascaded() {
		t.Error("Cascaded() = false after cascade")
	}
	if p.Capacity() != 0 {
		t.Errorf("capacity after cascade = %v, want 0", p.Capacity())
	}
}

// TestRestoreAfterCascadeRejected pins the "cascade is terminal" rule:
// RestoreSupply used to flip failed=false silently while cascaded stayed
// true, leaving a plant that reported capacity it could not deliver.
func TestRestoreAfterCascadeRejected(t *testing.T) {
	p := MotivatingPlant(0.5)
	if err := p.FailSupply("PS0"); err != nil {
		t.Fatal(err)
	}
	p.Observe(0, units.Watts(746))
	if !p.Observe(1, units.Watts(746)) {
		t.Fatal("no cascade after ΔT of overload")
	}
	if err := p.RestoreSupply("PS0"); err == nil {
		t.Fatal("RestoreSupply succeeded after a cascade")
	}
	if err := p.RestoreSupply("PS1"); err == nil {
		t.Fatal("RestoreSupply revived a cascade-failed supply")
	}
	if got := p.Capacity(); got != 0 {
		t.Errorf("capacity after rejected restore = %v, want 0", got)
	}
	if !p.Cascaded() {
		t.Error("plant no longer cascaded after rejected restore")
	}
}

// TestCascadeAvertedByShedding shows that dropping the load under the
// surviving capacity before ΔT prevents the cascade — the job fvsst exists
// to do.
func TestCascadeAvertedByShedding(t *testing.T) {
	p := MotivatingPlant(0.5)
	if err := p.FailSupply("PS1"); err != nil {
		t.Fatal(err)
	}
	if p.Observe(0.1, units.Watts(746)) {
		t.Fatal("premature cascade")
	}
	// Scheduler sheds load to 450 W at t=0.4 (< ΔT after overload onset).
	if p.Observe(0.4, units.Watts(450)) {
		t.Fatal("cascade despite shedding in time")
	}
	if p.OverloadedFor() != 0 {
		t.Errorf("OverloadedFor = %v after recovery", p.OverloadedFor())
	}
	// Long after, still fine.
	if p.Observe(10, units.Watts(450)) {
		t.Fatal("cascade while under capacity")
	}
}

func TestOverloadClockResetsOnRecovery(t *testing.T) {
	p := MotivatingPlant(1.0)
	if err := p.FailSupply("PS0"); err != nil {
		t.Fatal(err)
	}
	p.Observe(0, units.Watts(700))   // overload starts
	p.Observe(0.9, units.Watts(400)) // recovered before deadline
	p.Observe(1.0, units.Watts(700)) // overload restarts — new clock
	if p.Observe(1.9, units.Watts(700)) {
		t.Fatal("cascade: overload clock did not reset")
	}
	if !p.Observe(2.1, units.Watts(700)) {
		t.Fatal("no cascade after full ΔT of second overload")
	}
}

func TestObservePanicsOnTimeTravel(t *testing.T) {
	p := MotivatingPlant(0.5)
	p.Observe(5, units.Watts(100))
	defer func() {
		if recover() == nil {
			t.Error("want panic on backwards time")
		}
	}()
	p.Observe(4, units.Watts(100))
}

func TestBudgetSchedule(t *testing.T) {
	sched, err := NewBudgetSchedule(units.Watts(560),
		BudgetEvent{At: 10, Budget: units.Watts(294), Label: "PS0 fails"},
		BudgetEvent{At: 20, Budget: units.Watts(560), Label: "PS0 restored"},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 560}, {9.99, 560}, {10, 294}, {15, 294}, {20, 560}, {100, 560},
	}
	for _, c := range cases {
		if got := sched.At(c.t); got.W() != c.want {
			t.Errorf("At(%v) = %v, want %vW", c.t, got, c.want)
		}
	}
	if !sched.ChangesBetween(9, 11) {
		t.Error("ChangesBetween(9,11) = false")
	}
	if sched.ChangesBetween(11, 19) {
		t.Error("ChangesBetween(11,19) = true")
	}
	if len(sched.Events()) != 2 {
		t.Errorf("Events() len = %d", len(sched.Events()))
	}
}

func TestBudgetScheduleSortsEvents(t *testing.T) {
	sched, err := NewBudgetSchedule(units.Watts(100),
		BudgetEvent{At: 20, Budget: units.Watts(50)},
		BudgetEvent{At: 10, Budget: units.Watts(75)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.At(15); got.W() != 75 {
		t.Errorf("At(15) = %v, want 75W (events must be sorted)", got)
	}
}

func TestBudgetScheduleValidation(t *testing.T) {
	if _, err := NewBudgetSchedule(0); err == nil {
		t.Error("zero initial budget accepted")
	}
	if _, err := NewBudgetSchedule(units.Watts(100), BudgetEvent{At: -1, Budget: units.Watts(50)}); err == nil {
		t.Error("negative event time accepted")
	}
	if _, err := NewBudgetSchedule(units.Watts(100), BudgetEvent{At: 1, Budget: 0}); err == nil {
		t.Error("zero event budget accepted")
	}
}

func TestMeterNoise(t *testing.T) {
	noiseless, err := NewMeter(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := noiseless.Read(units.Watts(100)); got.W() != 100 {
		t.Errorf("noiseless read = %v", got)
	}

	noisy, err := NewMeter(0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumsq float64
	const n = 4000
	for i := 0; i < n; i++ {
		r := noisy.Read(units.Watts(100)).W()
		if r < 0 {
			t.Fatal("negative power reading")
		}
		sum += r
		sumsq += r * r
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-100) > 1 {
		t.Errorf("noisy mean = %v, want ≈100", mean)
	}
	if math.Abs(sd-5) > 1 {
		t.Errorf("noisy stddev = %v, want ≈5", sd)
	}
}

func TestMeterValidation(t *testing.T) {
	if _, err := NewMeter(-0.1, 1); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := NewMeter(0.9, 1); err == nil {
		t.Error("huge sigma accepted")
	}
}

func TestMeterDeterministicPerSeed(t *testing.T) {
	a, _ := NewMeter(0.05, 7)
	b, _ := NewMeter(0.05, 7)
	for i := 0; i < 10; i++ {
		if a.Read(units.Watts(50)) != b.Read(units.Watts(50)) {
			t.Fatal("same seed produced different readings")
		}
	}
}

func TestEnergyMeter(t *testing.T) {
	var e EnergyMeter
	if e.AveragePower() != 0 {
		t.Error("fresh meter should report 0 average power")
	}
	if err := e.Accumulate(units.Watts(100), 2); err != nil {
		t.Fatal(err)
	}
	if err := e.Accumulate(units.Watts(50), 2); err != nil {
		t.Fatal(err)
	}
	if got := e.Total().J(); got != 300 {
		t.Errorf("Total = %v J, want 300", got)
	}
	if got := e.Elapsed(); got != 4 {
		t.Errorf("Elapsed = %v, want 4", got)
	}
	if got := e.AveragePower().W(); got != 75 {
		t.Errorf("AveragePower = %v, want 75W", got)
	}
	if err := e.Accumulate(units.Watts(10), -1); err == nil {
		t.Error("negative dt accepted")
	}
	if err := e.Accumulate(units.Watts(-10), 1); err == nil {
		t.Error("negative power accepted")
	}
}

func TestSystemPowerMotivatingBreakdown(t *testing.T) {
	s := MotivatingSystem()
	if s.Base.W() != 186 {
		t.Errorf("base = %v, want 186W (746 - 4×140)", s.Base)
	}
	// Full CPU power reproduces the §2 total: 746 W.
	if got := s.Total(units.Watts(560)); got.W() != 746 {
		t.Errorf("Total(560W) = %v, want 746W", got)
	}
	// §2/§5: a single surviving 480 W supply leaves 294 W for the CPUs.
	budget, ok := s.CPUBudgetFor(units.Watts(480))
	if !ok || budget.W() != 294 {
		t.Errorf("CPUBudgetFor(480W) = %v,%v want 294W,true", budget, ok)
	}
	if _, ok := s.CPUBudgetFor(units.Watts(100)); ok {
		t.Error("limit below base should be infeasible")
	}
}
