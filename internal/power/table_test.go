package power

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestPaperTable1Verbatim(t *testing.T) {
	tab := PaperTable1()
	if tab.Len() != 16 {
		t.Fatalf("Table 1 has %d points, want 16", tab.Len())
	}
	// Spot-check the paper's values.
	checks := map[float64]float64{250: 9, 500: 35, 600: 48, 700: 66, 750: 75, 800: 84, 900: 109, 1000: 140}
	for mhz, w := range checks {
		p, err := tab.PowerAt(units.MHz(mhz))
		if err != nil {
			t.Errorf("PowerAt(%vMHz): %v", mhz, err)
			continue
		}
		if p.W() != w {
			t.Errorf("PowerAt(%vMHz) = %v, want %vW", mhz, p, w)
		}
	}
	if tab.MaxFrequency() != units.GHz(1) || tab.MinFrequency() != units.MHz(250) {
		t.Errorf("range = %v..%v", tab.MinFrequency(), tab.MaxFrequency())
	}
}

func TestSection5Table(t *testing.T) {
	tab := Section5Table()
	if tab.Len() != 5 {
		t.Fatalf("§5 table has %d points, want 5", tab.Len())
	}
	// §5: power vector [48W, 66W, 84W, 109W, 140W] for 0.6..1.0 GHz.
	for _, c := range []struct{ mhz, w float64 }{{600, 48}, {700, 66}, {800, 84}, {900, 109}, {1000, 140}} {
		p, err := tab.PowerAt(units.MHz(c.mhz))
		if err != nil || p.W() != c.w {
			t.Errorf("PowerAt(%v) = %v,%v want %vW", c.mhz, p, err, c.w)
		}
	}
}

func TestNewTableValidation(t *testing.T) {
	good := []OperatingPoint{
		{F: units.MHz(500), V: units.Volts(0.9), P: units.Watts(35)},
		{F: units.GHz(1), V: units.Volts(1.3), P: units.Watts(140)},
	}
	if _, err := NewTable(good); err != nil {
		t.Errorf("good table rejected: %v", err)
	}
	cases := []struct {
		name string
		pts  []OperatingPoint
	}{
		{"empty", nil},
		{"zero freq", []OperatingPoint{{F: 0, V: 1, P: 1}}},
		{"zero volt", []OperatingPoint{{F: units.GHz(1), V: 0, P: 1}}},
		{"zero power", []OperatingPoint{{F: units.GHz(1), V: 1, P: 0}}},
		{"duplicate freq", []OperatingPoint{
			{F: units.GHz(1), V: 1, P: 10},
			{F: units.GHz(1), V: 1, P: 20},
		}},
		{"voltage decreasing", []OperatingPoint{
			{F: units.MHz(500), V: units.Volts(1.2), P: units.Watts(35)},
			{F: units.GHz(1), V: units.Volts(1.0), P: units.Watts(140)},
		}},
		{"power not increasing", []OperatingPoint{
			{F: units.MHz(500), V: units.Volts(0.9), P: units.Watts(35)},
			{F: units.GHz(1), V: units.Volts(1.3), P: units.Watts(35)},
		}},
	}
	for _, c := range cases {
		if _, err := NewTable(c.pts); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestNewTableSortsInput(t *testing.T) {
	pts := []OperatingPoint{
		{F: units.GHz(1), V: units.Volts(1.3), P: units.Watts(140)},
		{F: units.MHz(500), V: units.Volts(0.9), P: units.Watts(35)},
	}
	tab, err := NewTable(pts)
	if err != nil {
		t.Fatal(err)
	}
	if tab.MinFrequency() != units.MHz(500) {
		t.Errorf("MinFrequency = %v", tab.MinFrequency())
	}
	// Input slice must not be mutated.
	if pts[0].F != units.GHz(1) {
		t.Error("NewTable mutated its input")
	}
}

func TestTableLookupsErrorOffGrid(t *testing.T) {
	tab := PaperTable1()
	if _, err := tab.PowerAt(units.MHz(725)); err == nil {
		t.Error("PowerAt off-grid: want error")
	}
	if _, err := tab.MinVoltage(units.MHz(725)); err == nil {
		t.Error("MinVoltage off-grid: want error")
	}
}

func TestMinVoltageMonotone(t *testing.T) {
	tab := PaperTable1()
	prev := units.Voltage(0)
	for _, p := range tab.Points() {
		v, err := tab.MinVoltage(p.F)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Errorf("voltage decreased at %v: %v < %v", p.F, v, prev)
		}
		prev = v
	}
}

func TestPowerInterp(t *testing.T) {
	tab := PaperTable1()
	// Exact grid point.
	p, err := tab.PowerInterp(units.MHz(750))
	if err != nil || p.W() != 75 {
		t.Errorf("PowerInterp(750MHz) = %v,%v", p, err)
	}
	// Midpoint of 700 (66W) and 750 (75W) = 70.5W.
	p, err = tab.PowerInterp(units.MHz(725))
	if err != nil || math.Abs(p.W()-70.5) > 1e-9 {
		t.Errorf("PowerInterp(725MHz) = %v,%v want 70.5W", p, err)
	}
	// Below table clamps to lowest point.
	p, err = tab.PowerInterp(units.MHz(100))
	if err != nil || p.W() != 9 {
		t.Errorf("PowerInterp(100MHz) = %v,%v want 9W", p, err)
	}
	// Above table errors.
	if _, err := tab.PowerInterp(units.GHz(2)); err == nil {
		t.Error("PowerInterp above table: want error")
	}
}

func TestMaxFrequencyUnder(t *testing.T) {
	tab := PaperTable1()
	cases := []struct {
		budget float64
		want   units.Frequency
		ok     bool
	}{
		{140, units.GHz(1), true},
		{139, units.MHz(950), true},
		{75, units.MHz(750), true}, // paper: 75 W cap → 750 MHz
		{35, units.MHz(500), true}, // paper: 35 W cap → 500 MHz
		{48, units.MHz(600), true}, // paper: 48 W ↔ 600 MHz
		{9, units.MHz(250), true},
		{8, 0, false},
		{1e6, units.GHz(1), true},
	}
	for _, c := range cases {
		got, ok := tab.MaxFrequencyUnder(units.Watts(c.budget))
		if ok != c.ok || got != c.want {
			t.Errorf("MaxFrequencyUnder(%vW) = %v,%v want %v,%v", c.budget, got, ok, c.want, c.ok)
		}
	}
}

func TestFrequenciesSet(t *testing.T) {
	set := PaperTable1().Frequencies()
	if len(set) != 16 || set.Min() != units.MHz(250) || set.Max() != units.GHz(1) {
		t.Errorf("Frequencies() = %v", set)
	}
}

func TestPointsReturnsCopy(t *testing.T) {
	tab := PaperTable1()
	pts := tab.Points()
	pts[0].P = units.Watts(9999)
	if p, _ := tab.PowerAt(units.MHz(250)); p.W() != 9 {
		t.Error("Points() exposed internal state")
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTable(nil): want panic")
		}
	}()
	MustTable(nil)
}
