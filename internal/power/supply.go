package power

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/units"
)

// Supply is one power supply unit. The motivating example (§2) has two
// 480 W supplies feeding a 746 W system: either alone cannot carry the full
// load, so losing one starts a cascade-failure clock.
type Supply struct {
	Name     string
	Capacity units.Power
	failed   bool
}

// Failed reports whether the supply is currently failed.
func (s *Supply) Failed() bool { return s.failed }

// Plant models the machine-room power feed: a set of supplies, the load
// placed on them, and the cascade-failure rule. When the load exceeds the
// combined capacity of the surviving supplies continuously for longer than
// DeltaT, the overloaded survivors fail too (§2: "by time T0+ΔT, the system
// must be under the new power limit or the second power supply will fail").
type Plant struct {
	supplies []*Supply
	// DeltaT is the overload tolerance of a supply in seconds, a
	// characteristic of the supply hardware.
	DeltaT float64

	overloadSince float64 // simulation time overload began; <0 when not overloaded
	cascaded      bool
	now           float64
}

// NewPlant builds a plant from supply capacities. DeltaT is the overload
// tolerance in seconds.
func NewPlant(deltaT float64, capacities ...units.Power) (*Plant, error) {
	if deltaT <= 0 {
		return nil, fmt.Errorf("power: plant ΔT %v must be positive", deltaT)
	}
	if len(capacities) == 0 {
		return nil, fmt.Errorf("power: plant needs at least one supply")
	}
	p := &Plant{DeltaT: deltaT, overloadSince: -1}
	for i, c := range capacities {
		if c <= 0 {
			return nil, fmt.Errorf("power: supply %d capacity %v must be positive", i, c)
		}
		p.supplies = append(p.supplies, &Supply{Name: fmt.Sprintf("PS%d", i), Capacity: c})
	}
	return p, nil
}

// MotivatingPlant returns the §2 example plant: two 480 W supplies with the
// given cascade tolerance.
func MotivatingPlant(deltaT float64) *Plant {
	p, err := NewPlant(deltaT, units.Watts(480), units.Watts(480))
	if err != nil {
		panic(err)
	}
	return p
}

// Capacity returns the combined capacity of the surviving supplies.
func (p *Plant) Capacity() units.Power {
	var total units.Power
	for _, s := range p.supplies {
		if !s.failed {
			total += s.Capacity
		}
	}
	return total
}

// Supplies returns the plant's supplies (shared, for inspection).
func (p *Plant) Supplies() []*Supply { return p.supplies }

// Cascaded reports whether a cascade failure has occurred; after a cascade
// the plant delivers no power and the machine is down.
func (p *Plant) Cascaded() bool { return p.cascaded }

// FailSupply marks the named supply failed. It is the §2 time-T0 event.
func (p *Plant) FailSupply(name string) error {
	for _, s := range p.supplies {
		if s.Name == name {
			if s.failed {
				return fmt.Errorf("power: supply %s already failed", name)
			}
			s.failed = true
			return nil
		}
	}
	return fmt.Errorf("power: no supply named %s", name)
}

// RestoreSupply brings a failed supply back (the paper's "restoration of a
// power supply" trigger). Restoring after a cascade does not revive the
// plant: a cascade is terminal for the run, so the call is rejected rather
// than silently un-failing a supply the cascade took down.
func (p *Plant) RestoreSupply(name string) error {
	if p.cascaded {
		return fmt.Errorf("power: cannot restore supply %s: plant has cascaded (terminal)", name)
	}
	for _, s := range p.supplies {
		if s.Name == name {
			if !s.failed {
				return fmt.Errorf("power: supply %s not failed", name)
			}
			s.failed = false
			return nil
		}
	}
	return fmt.Errorf("power: no supply named %s", name)
}

// Observe advances the plant to simulation time now with the machine drawing
// load, and returns whether the plant has cascade-failed. Overload that
// persists continuously for more than DeltaT trips the cascade.
func (p *Plant) Observe(now float64, load units.Power) bool {
	if now < p.now {
		panic(fmt.Sprintf("power: plant time went backwards: %v < %v", now, p.now))
	}
	p.now = now
	if p.cascaded {
		return true
	}
	if load > p.Capacity() {
		if p.overloadSince < 0 {
			p.overloadSince = now
		} else if now-p.overloadSince >= p.DeltaT {
			p.cascaded = true
			for _, s := range p.supplies {
				s.failed = true
			}
		}
	} else {
		p.overloadSince = -1
	}
	return p.cascaded
}

// OverloadedFor returns how long the plant has been continuously
// overloaded, or 0 when it is not.
func (p *Plant) OverloadedFor() float64 {
	if p.overloadSince < 0 {
		return 0
	}
	return p.now - p.overloadSince
}

// BudgetEvent is a scheduled change to the global power budget — the
// paper's first trigger for rescheduling ("the global power limit may
// change, due, for example, to the loss or the restoration of a power
// supply").
type BudgetEvent struct {
	At     float64 // simulation time in seconds
	Budget units.Power
	Label  string
}

// BudgetSchedule is a time-ordered list of budget events with a lookup for
// the budget in force at any time.
type BudgetSchedule struct {
	initial units.Power
	events  []BudgetEvent
}

// NewBudgetSchedule starts with an initial budget and applies the given
// events in time order.
func NewBudgetSchedule(initial units.Power, events ...BudgetEvent) (*BudgetSchedule, error) {
	if initial <= 0 {
		return nil, fmt.Errorf("power: initial budget %v must be positive", initial)
	}
	evs := make([]BudgetEvent, len(events))
	copy(evs, events)
	sort.Slice(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for i, e := range evs {
		if e.At < 0 {
			return nil, fmt.Errorf("power: budget event %d at negative time %v", i, e.At)
		}
		if e.Budget <= 0 {
			return nil, fmt.Errorf("power: budget event %q has non-positive budget %v", e.Label, e.Budget)
		}
	}
	return &BudgetSchedule{initial: initial, events: evs}, nil
}

// At returns the budget in force at simulation time t.
func (b *BudgetSchedule) At(t float64) units.Power {
	budget := b.initial
	for _, e := range b.events {
		if e.At <= t {
			budget = e.Budget
		} else {
			break
		}
	}
	return budget
}

// Events returns the schedule's events in time order.
func (b *BudgetSchedule) Events() []BudgetEvent {
	out := make([]BudgetEvent, len(b.events))
	copy(out, b.events)
	return out
}

// ChangesBetween reports whether the budget differs between times t0 and t1
// (t0 < t1) — how the scheduler's trigger loop detects a limit change.
func (b *BudgetSchedule) ChangesBetween(t0, t1 float64) bool {
	return b.At(t0) != b.At(t1)
}

// NextChangeAt returns the schedule's next event time strictly after now
// — the budget edge a DES driver must stop at — or +Inf when no event
// remains. Events that re-state the current budget still count as edges:
// the bound is conservative, never late.
func (b *BudgetSchedule) NextChangeAt(now float64) float64 {
	for _, e := range b.events {
		if e.At > now {
			return e.At
		}
	}
	return math.Inf(1)
}
