package power

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// VoltageCurve maps a frequency to the minimum voltage that reliably drives
// it: V(f) = max(VMin, VMax·(f/FMax)^Gamma). The paper's Table 1 powers
// follow an almost exactly quadratic frequency dependence (P(1 GHz)/P(500
// MHz) = 140/35 = 4), which under P ≈ C·V²·f implies V ∝ √f, hence the
// default Gamma of 0.5 anchored at the platform's nominal 1 GHz / 1.3 V.
type VoltageCurve struct {
	VMax  units.Voltage
	VMin  units.Voltage
	FMax  units.Frequency
	Gamma float64
}

// DefaultVoltageCurve returns the curve calibrated to the p630's nominal
// operating point (1 GHz at 1.3 V) with a 0.6 V retention floor.
func DefaultVoltageCurve() VoltageCurve {
	return VoltageCurve{VMax: units.Volts(1.3), VMin: units.Volts(0.6), FMax: units.GHz(1), Gamma: 0.5}
}

// Validate checks the curve's parameters.
func (c VoltageCurve) Validate() error {
	if c.FMax <= 0 {
		return fmt.Errorf("power: voltage curve FMax %v must be positive", c.FMax)
	}
	if c.VMax <= 0 || c.VMin < 0 || c.VMin > c.VMax {
		return fmt.Errorf("power: voltage curve VMin/VMax %v/%v invalid", c.VMin, c.VMax)
	}
	if c.Gamma <= 0 || c.Gamma > 1 {
		return fmt.Errorf("power: voltage curve gamma %v out of (0,1]", c.Gamma)
	}
	return nil
}

// VoltageFor returns the minimum voltage for frequency f. Frequencies above
// FMax extrapolate along the curve; non-positive frequencies get VMin.
func (c VoltageCurve) VoltageFor(f units.Frequency) units.Voltage {
	if f <= 0 {
		return c.VMin
	}
	v := units.Voltage(float64(c.VMax) * math.Pow(f.Hz()/c.FMax.Hz(), c.Gamma))
	if v < c.VMin {
		return c.VMin
	}
	return v
}

// Model is the paper's analytic processor power model
//
//	P = C·V²·f + B·V²
//
// where the first term is active (switching) power and the second static
// (leakage) power (§4.4). C is the effective switched capacitance and B the
// process- and temperature-dependent leakage coefficient.
type Model struct {
	C     units.Capacitance // farads
	B     float64           // watts per volt² of leakage
	Curve VoltageCurve
}

// Power returns the peak power at frequency f with the curve's minimum
// voltage for f.
func (m Model) Power(f units.Frequency) units.Power {
	v := m.Curve.VoltageFor(f)
	return m.PowerAt(f, v)
}

// PowerAt returns the power at an explicit frequency/voltage pair.
func (m Model) PowerAt(f units.Frequency, v units.Voltage) units.Power {
	vv := v.Squared()
	return units.Power(m.C.F()*vv*f.Hz() + m.B*vv)
}

// ActivePower returns only the C·V²·f switching term.
func (m Model) ActivePower(f units.Frequency, v units.Voltage) units.Power {
	return units.Power(m.C.F() * v.Squared() * f.Hz())
}

// StaticPower returns only the B·V² leakage term.
func (m Model) StaticPower(v units.Voltage) units.Power {
	return units.Power(m.B * v.Squared())
}

// Tabulate evaluates the model at each frequency of set and returns the
// resulting operating-point table — the computational approach the paper
// describes: "calculate in advance the maximum power associated with each
// available frequency setting using the minimum acceptable voltage".
func (m Model) Tabulate(set units.FrequencySet) (*Table, error) {
	points := make([]OperatingPoint, len(set))
	for i, f := range set {
		v := m.Curve.VoltageFor(f)
		points[i] = OperatingPoint{F: f, V: v, P: m.PowerAt(f, v)}
	}
	return NewTable(points)
}

// FitModel least-squares fits C and B of P = C·V²f + B·V² to an existing
// operating-point table (with the voltages the table carries). This is how
// the reproduction recovers an analytic model from the paper's
// Lava-generated Table 1. The fit solves the 2×2 normal equations for the
// design matrix [V²f, V²]; a negative fitted coefficient is clamped to zero
// and the other coefficient refitted alone, since negative capacitance or
// leakage is unphysical.
func FitModel(t *Table, curve VoltageCurve) (Model, error) {
	if err := curve.Validate(); err != nil {
		return Model{}, err
	}
	pts := t.Points()
	if len(pts) < 2 {
		return Model{}, fmt.Errorf("power: need at least 2 points to fit, have %d", len(pts))
	}
	var sxx, sxy, syy, sxp, syp float64
	for _, p := range pts {
		x := p.V.Squared() * p.F.Hz() // V²f
		y := p.V.Squared()            // V²
		w := p.P.W()
		sxx += x * x
		sxy += x * y
		syy += y * y
		sxp += x * w
		syp += y * w
	}
	det := sxx*syy - sxy*sxy
	if det == 0 {
		return Model{}, fmt.Errorf("power: singular fit (degenerate table)")
	}
	c := (sxp*syy - syp*sxy) / det
	b := (syp*sxx - sxp*sxy) / det
	if c < 0 {
		c = 0
		b = syp / syy
	}
	if b < 0 {
		b = 0
		c = sxp / sxx
	}
	return Model{C: units.Farads(c), B: b, Curve: curve}, nil
}

// WithVoltageVariation derives per-processor operating-point tables from a
// shared base table for machines with process variation (§5: "the voltage
// table is different for each processor if there is significant process
// variation among them"). Each scale multiplies the minimum voltage of
// every operating point of that processor's table; power follows as V²
// (both the active and static terms are quadratic in V). Scales must be
// positive and within ±20% of nominal — anything further is a binning
// error, not variation.
func WithVoltageVariation(base *Table, scales []float64) ([]*Table, error) {
	out := make([]*Table, len(scales))
	for i, s := range scales {
		if s < 0.8 || s > 1.2 {
			return nil, fmt.Errorf("power: voltage scale %v for cpu %d out of [0.8,1.2]", s, i)
		}
		pts := base.Points()
		for j := range pts {
			pts[j].V = units.Voltage(pts[j].V.V() * s)
			pts[j].P = units.Power(pts[j].P.W() * s * s)
		}
		t, err := NewTable(pts)
		if err != nil {
			return nil, fmt.Errorf("power: variation table for cpu %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// FitError returns the maximum relative error of the model against the
// table, |P_model - P_table| / P_table, over all points.
func FitError(m Model, t *Table) float64 {
	worst := 0.0
	for _, p := range t.Points() {
		got := m.PowerAt(p.F, p.V).W()
		rel := math.Abs(got-p.P.W()) / p.P.W()
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
