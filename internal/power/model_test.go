package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestDefaultVoltageCurve(t *testing.T) {
	c := DefaultVoltageCurve()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Nominal point: 1 GHz at 1.3 V (§7.1).
	if got := c.VoltageFor(units.GHz(1)); math.Abs(got.V()-1.3) > 1e-12 {
		t.Errorf("V(1GHz) = %v, want 1.3V", got)
	}
	// √ scaling: V(250MHz) = 1.3·√0.25 = 0.65.
	if got := c.VoltageFor(units.MHz(250)); math.Abs(got.V()-0.65) > 1e-12 {
		t.Errorf("V(250MHz) = %v, want 0.65V", got)
	}
	// Floor applies at very low frequency.
	if got := c.VoltageFor(units.MHz(10)); got.V() != 0.6 {
		t.Errorf("V(10MHz) = %v, want floor 0.6V", got)
	}
	if got := c.VoltageFor(0); got.V() != 0.6 {
		t.Errorf("V(0) = %v, want floor", got)
	}
}

func TestVoltageCurveValidate(t *testing.T) {
	bad := []VoltageCurve{
		{VMax: 1.3, VMin: 0.6, FMax: 0, Gamma: 0.5},
		{VMax: 0, VMin: 0, FMax: units.GHz(1), Gamma: 0.5},
		{VMax: 1.0, VMin: 1.2, FMax: units.GHz(1), Gamma: 0.5},
		{VMax: 1.3, VMin: 0.6, FMax: units.GHz(1), Gamma: 0},
		{VMax: 1.3, VMin: 0.6, FMax: units.GHz(1), Gamma: 1.5},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad curve %d accepted", i)
		}
	}
}

func TestVoltageCurveMonotone(t *testing.T) {
	c := DefaultVoltageCurve()
	err := quick.Check(func(a, b uint16) bool {
		fa, fb := units.MHz(float64(a%1000)+1), units.MHz(float64(b%1000)+1)
		if fa > fb {
			fa, fb = fb, fa
		}
		return c.VoltageFor(fa) <= c.VoltageFor(fb)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestModelPowerDecomposition(t *testing.T) {
	m := Model{C: units.Farads(80e-9), B: 2, Curve: DefaultVoltageCurve()}
	f := units.GHz(1)
	v := m.Curve.VoltageFor(f)
	active := m.ActivePower(f, v)
	static := m.StaticPower(v)
	total := m.PowerAt(f, v)
	if math.Abs(float64(active+static-total)) > 1e-9 {
		t.Errorf("active %v + static %v != total %v", active, static, total)
	}
	// Active term: 80e-9 · 1.69 · 1e9 = 135.2 W.
	if math.Abs(active.W()-135.2) > 1e-6 {
		t.Errorf("active = %v, want 135.2W", active)
	}
	// Static term: 2 · 1.69 = 3.38 W.
	if math.Abs(static.W()-3.38) > 1e-9 {
		t.Errorf("static = %v, want 3.38W", static)
	}
	if got := m.Power(f); got != total {
		t.Errorf("Power(f) = %v, want %v", got, total)
	}
}

func TestFitModelRecoversKnownCoefficients(t *testing.T) {
	// Build a table from a known model, then fit it back.
	truth := Model{C: units.Farads(75e-9), B: 3, Curve: DefaultVoltageCurve()}
	set := units.MustFrequencySet(
		units.MHz(250), units.MHz(500), units.MHz(750), units.GHz(1))
	tab, err := truth.Tabulate(set)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitModel(tab, truth.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.C.F()-truth.C.F())/truth.C.F() > 1e-9 {
		t.Errorf("fit C = %v, want %v", fit.C, truth.C)
	}
	if math.Abs(fit.B-truth.B)/truth.B > 1e-6 {
		t.Errorf("fit B = %v, want %v", fit.B, truth.B)
	}
	if e := FitError(fit, tab); e > 1e-9 {
		t.Errorf("self-fit error = %v", e)
	}
}

func TestFitModelAgainstPaperTable1(t *testing.T) {
	// The analytic CV²f+BV² model with the default √f voltage curve must
	// reproduce the Lava-generated Table 1 within 8% everywhere — the
	// "regenerate the table shape" claim of DESIGN.md. (The table is not
	// exactly quadratic at its extremes, so a two-parameter physical model
	// cannot fit it perfectly.)
	tab := PaperTable1()
	m, err := FitModel(tab, DefaultVoltageCurve())
	if err != nil {
		t.Fatal(err)
	}
	if m.C <= 0 {
		t.Errorf("fitted capacitance %v not positive", m.C)
	}
	if m.B < 0 {
		t.Errorf("fitted leakage %v negative", m.B)
	}
	if e := FitError(m, tab); e > 0.08 {
		t.Errorf("fit error %.3f exceeds 8%%", e)
	}
}

func TestFitModelClampsNegativeCoefficients(t *testing.T) {
	// A table with power *decreasing* influence of frequency would drive C
	// negative; construct a nearly-flat table and check the clamp leaves
	// physical (non-negative) coefficients.
	pts := []OperatingPoint{
		{F: units.MHz(500), V: units.Volts(1.0), P: units.Watts(100)},
		{F: units.MHz(600), V: units.Volts(1.0), P: units.Watts(100.1)},
		{F: units.MHz(700), V: units.Volts(1.0), P: units.Watts(100.2)},
	}
	tab := MustTable(pts)
	m, err := FitModel(tab, DefaultVoltageCurve())
	if err != nil {
		t.Fatal(err)
	}
	if m.C < 0 || m.B < 0 {
		t.Errorf("clamp failed: C=%v B=%v", m.C, m.B)
	}
}

func TestFitModelNeedsTwoPoints(t *testing.T) {
	tab := MustTable([]OperatingPoint{{F: units.GHz(1), V: units.Volts(1.3), P: units.Watts(140)}})
	if _, err := FitModel(tab, DefaultVoltageCurve()); err == nil {
		t.Error("single-point fit: want error")
	}
}

func TestTabulateRoundTrip(t *testing.T) {
	m := Model{C: units.Farads(80e-9), B: 1, Curve: DefaultVoltageCurve()}
	set := PaperTable1().Frequencies()
	tab, err := m.Tabulate(set)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != len(set) {
		t.Fatalf("Tabulate len = %d, want %d", tab.Len(), len(set))
	}
	for _, p := range tab.Points() {
		if got := m.Power(p.F); math.Abs(float64(got-p.P)) > 1e-9 {
			t.Errorf("Tabulate(%v) = %v, model says %v", p.F, p.P, got)
		}
	}
}

func TestModelPowerMonotoneInFrequency(t *testing.T) {
	m := Model{C: units.Farads(80e-9), B: 2, Curve: DefaultVoltageCurve()}
	err := quick.Check(func(a, b uint16) bool {
		fa, fb := units.MHz(float64(a%1000)+50), units.MHz(float64(b%1000)+50)
		if fa > fb {
			fa, fb = fb, fa
		}
		return m.Power(fa) <= m.Power(fb)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
