package power_test

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/units"
)

// ExampleTable_MaxFrequencyUnder shows the §4.4 budget-to-frequency
// conversion on the paper's Table 1: the highest setting whose peak power
// fits the limit.
func ExampleTable_MaxFrequencyUnder() {
	tab := power.PaperTable1()
	for _, limit := range []float64{140, 75, 35} {
		f, _ := tab.MaxFrequencyUnder(units.Watts(limit))
		fmt.Printf("%3.0fW -> %v\n", limit, f)
	}
	// Output:
	// 140W -> 1GHz
	//  75W -> 750MHz
	//  35W -> 500MHz
}

// ExampleMotivatingSystem shows the §2 power arithmetic: the surviving
// 480 W supply leaves 294 W for the four processors.
func ExampleMotivatingSystem() {
	sys := power.MotivatingSystem()
	fmt.Println("full system:", sys.Total(units.Watts(4*140)))
	budget, ok := sys.CPUBudgetFor(units.Watts(480))
	fmt.Println("CPU budget on one supply:", budget, ok)
	// Output:
	// full system: 746W
	// CPU budget on one supply: 294W true
}
