package power

import (
	"fmt"
	"math/rand"

	"repro/internal/units"
)

// Meter is the power-measurement path the paper's mechanism uses to
// "monitor compliance" with the global limit (§5). Real sensors are noisy;
// the meter applies multiplicative Gaussian noise from a seeded source so
// experiments are reproducible.
type Meter struct {
	rng *rand.Rand
	// NoiseSigma is the relative standard deviation of a reading
	// (0.01 = 1% sensor noise). Zero disables noise.
	NoiseSigma float64
}

// NewMeter returns a meter with the given noise level and seed.
func NewMeter(noiseSigma float64, seed int64) (*Meter, error) {
	if noiseSigma < 0 || noiseSigma > 0.5 {
		return nil, fmt.Errorf("power: meter noise sigma %v out of [0,0.5]", noiseSigma)
	}
	return &Meter{rng: rand.New(rand.NewSource(seed)), NoiseSigma: noiseSigma}, nil
}

// Read returns a noisy observation of the true power, clamped non-negative.
func (m *Meter) Read(truth units.Power) units.Power {
	if m.NoiseSigma == 0 {
		return truth
	}
	obs := truth * units.Power(1+m.rng.NormFloat64()*m.NoiseSigma)
	if obs < 0 {
		obs = 0
	}
	return obs
}

// EnergyMeter integrates power over simulation time, producing the energy
// figures of Table 3 ("Energy @ 140W" etc., normalised by the caller).
type EnergyMeter struct {
	total units.Energy
	now   float64
	begun bool
}

// Accumulate adds power p held constant over dt seconds.
func (e *EnergyMeter) Accumulate(p units.Power, dt float64) error {
	if dt < 0 {
		return fmt.Errorf("power: energy meter dt %v must be non-negative", dt)
	}
	if p < 0 {
		return fmt.Errorf("power: energy meter power %v must be non-negative", p)
	}
	e.total += units.EnergyOver(p, dt)
	e.now += dt
	e.begun = true
	return nil
}

// AccumulateRepeat applies Accumulate(p, dt) n times. The per-iteration
// additions are deliberate: a DES fast-forward over n identical quanta
// must reproduce the exact floating-point rounding of n separate
// Accumulate calls (the integrated totals are rendered bit-for-bit in
// differential traces), so only the per-quantum *work* is batched, never
// the arithmetic.
func (e *EnergyMeter) AccumulateRepeat(p units.Power, dt float64, n int) error {
	if n < 0 {
		return fmt.Errorf("power: energy meter repeat count %d must be non-negative", n)
	}
	if dt < 0 {
		return fmt.Errorf("power: energy meter dt %v must be non-negative", dt)
	}
	if p < 0 {
		return fmt.Errorf("power: energy meter power %v must be non-negative", p)
	}
	inc := units.EnergyOver(p, dt)
	for i := 0; i < n; i++ {
		e.total += inc
		e.now += dt
	}
	if n > 0 {
		e.begun = true
	}
	return nil
}

// ReplayCells exposes the meter's two accumulators — total energy and
// elapsed seconds — so a DES bulk replay can interleave several meters'
// per-quantum additions in one fused loop (serial dependent-add chains
// overlap in the pipeline instead of running back to back). The caller
// must apply exactly the additions Accumulate would, in the same order;
// any other use voids the meter's invariants.
func (e *EnergyMeter) ReplayCells() (total *units.Energy, elapsed *float64) {
	e.begun = true
	return &e.total, &e.now
}

// Total returns the accumulated energy.
func (e *EnergyMeter) Total() units.Energy { return e.total }

// Elapsed returns the integrated time span in seconds.
func (e *EnergyMeter) Elapsed() float64 { return e.now }

// AveragePower returns total energy over elapsed time, or 0 before any
// accumulation.
func (e *EnergyMeter) AveragePower() units.Power {
	if !e.begun || e.now == 0 {
		return 0
	}
	return units.Power(e.total.J() / e.now)
}

// SystemPower converts processor power into whole-system power using the
// motivating example's breakdown: CPUs are 75% of a 746 W system, so the
// non-CPU base (memory, fans, disks, planar) is a constant overhead.
type SystemPower struct {
	// Base is the frequency-independent non-CPU power.
	Base units.Power
}

// MotivatingSystem returns the §2 breakdown: four 140 W CPUs (560 W) in a
// 746 W system leaves a 186 W non-CPU base.
func MotivatingSystem() SystemPower {
	return SystemPower{Base: units.Watts(746 - 4*140)}
}

// Total returns system power for a given aggregate CPU power.
func (s SystemPower) Total(cpu units.Power) units.Power { return s.Base + cpu }

// CPUBudgetFor inverts Total: the CPU power budget implied by a system-level
// limit. ok is false when the limit cannot even cover the base load.
func (s SystemPower) CPUBudgetFor(systemLimit units.Power) (units.Power, bool) {
	if systemLimit <= s.Base {
		return 0, false
	}
	return systemLimit - s.Base, true
}
