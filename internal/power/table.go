// Package power models everything electrical in the reproduction: the
// frequency→power operating-point table the scheduler consults (the paper's
// Table 1, generated there by the Lava circuit tool), the minimum-voltage
// curve, the analytic P = C·V²·f + B·V² model, the dual power supplies of
// the motivating example with their cascade-failure deadline, power
// measurement with sensor noise, and energy integration.
package power

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// OperatingPoint couples one frequency setting with the minimum voltage
// that reliably drives it and the peak power drawn at that pair. "Peak"
// because the paper's table deliberately ignores clock gating to obtain an
// upper bound (§4.4).
type OperatingPoint struct {
	F units.Frequency
	V units.Voltage
	P units.Power
}

// Table is the scheduler-facing operating-point table, ascending in
// frequency. Step 3 of the scheduling algorithm ("v = MinVoltage(f)") and
// the power lookups of Step 2 are both table lookups here, exactly as the
// paper prescribes for processors with a small fixed frequency set.
type Table struct {
	points []OperatingPoint
}

// NewTable validates and sorts the given operating points: frequencies must
// be unique and positive, and voltage and power must be non-decreasing in
// frequency (a higher clock can never need less voltage or draw less peak
// power).
func NewTable(points []OperatingPoint) (*Table, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("power: table must have at least one operating point")
	}
	ps := make([]OperatingPoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].F < ps[j].F })
	for i, p := range ps {
		if p.F <= 0 {
			return nil, fmt.Errorf("power: operating point %d has non-positive frequency %v", i, p.F)
		}
		if p.V <= 0 {
			return nil, fmt.Errorf("power: operating point %v has non-positive voltage %v", p.F, p.V)
		}
		if p.P <= 0 {
			return nil, fmt.Errorf("power: operating point %v has non-positive power %v", p.F, p.P)
		}
		if i > 0 {
			prev := ps[i-1]
			if p.F == prev.F {
				return nil, fmt.Errorf("power: duplicate frequency %v", p.F)
			}
			if p.V < prev.V {
				return nil, fmt.Errorf("power: voltage not monotone at %v", p.F)
			}
			if p.P <= prev.P {
				return nil, fmt.Errorf("power: power not strictly monotone at %v", p.F)
			}
		}
	}
	return &Table{points: ps}, nil
}

// MustTable is NewTable for static tables; it panics on error.
func MustTable(points []OperatingPoint) *Table {
	t, err := NewTable(points)
	if err != nil {
		panic(err)
	}
	return t
}

// Points returns a copy of the operating points, ascending in frequency.
func (t *Table) Points() []OperatingPoint {
	out := make([]OperatingPoint, len(t.points))
	copy(out, t.points)
	return out
}

// Frequencies returns the table's frequency settings as a FrequencySet.
func (t *Table) Frequencies() units.FrequencySet {
	fs := make([]units.Frequency, len(t.points))
	for i, p := range t.points {
		fs[i] = p.F
	}
	return units.MustFrequencySet(fs...)
}

// Len returns the number of operating points.
func (t *Table) Len() int { return len(t.points) }

// MaxFrequency returns the table's highest setting (the paper's f_max).
func (t *Table) MaxFrequency() units.Frequency { return t.points[len(t.points)-1].F }

// MinFrequency returns the table's lowest setting.
func (t *Table) MinFrequency() units.Frequency { return t.points[0].F }

// lookup returns the index of frequency f, or -1.
func (t *Table) lookup(f units.Frequency) int {
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].F >= f })
	if i < len(t.points) && t.points[i].F == f {
		return i
	}
	return -1
}

// IndexOf returns the index of the exact table frequency f (ascending
// order), or -1 when f is not an operating point. The index accessors
// below turn the scheduling hot path's repeated by-frequency searches into
// plain array indexing: resolve a frequency to its index once, then read
// power/voltage/frequency by index.
func (t *Table) IndexOf(f units.Frequency) int { return t.lookup(f) }

// FrequencyAtIndex returns the i-th operating point's frequency. It
// panics on an out-of-range index, like a slice.
func (t *Table) FrequencyAtIndex(i int) units.Frequency { return t.points[i].F }

// PowerAtIndex returns the i-th operating point's peak power. It panics
// on an out-of-range index, like a slice.
func (t *Table) PowerAtIndex(i int) units.Power { return t.points[i].P }

// VoltageAtIndex returns the i-th operating point's minimum voltage. It
// panics on an out-of-range index, like a slice.
func (t *Table) VoltageAtIndex(i int) units.Voltage { return t.points[i].V }

// PowerAt returns the peak power at exactly the table frequency f.
func (t *Table) PowerAt(f units.Frequency) (units.Power, error) {
	if i := t.lookup(f); i >= 0 {
		return t.points[i].P, nil
	}
	return 0, fmt.Errorf("power: frequency %v not in table", f)
}

// MinVoltage returns the minimum reliable voltage at exactly the table
// frequency f — Step 3 of the scheduling algorithm.
func (t *Table) MinVoltage(f units.Frequency) (units.Voltage, error) {
	if i := t.lookup(f); i >= 0 {
		return t.points[i].V, nil
	}
	return 0, fmt.Errorf("power: frequency %v not in table", f)
}

// PowerInterp returns the power at an arbitrary frequency by linear
// interpolation between neighbouring table points; it clamps below the
// table to the lowest point and errors above the table (extrapolating peak
// power upward would under-report it).
func (t *Table) PowerInterp(f units.Frequency) (units.Power, error) {
	if f <= t.points[0].F {
		return t.points[0].P, nil
	}
	last := t.points[len(t.points)-1]
	if f > last.F {
		return 0, fmt.Errorf("power: frequency %v above table maximum %v", f, last.F)
	}
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].F >= f })
	if t.points[i].F == f {
		return t.points[i].P, nil
	}
	lo, hi := t.points[i-1], t.points[i]
	frac := float64(f-lo.F) / float64(hi.F-lo.F)
	return lo.P + units.Power(frac)*(hi.P-lo.P), nil
}

// MaxFrequencyUnder returns the highest table frequency whose peak power is
// at most budget — "select the highest frequency that yields a power value
// less than the maximum" (§4.4). ok is false when even the lowest setting
// exceeds the budget.
func (t *Table) MaxFrequencyUnder(budget units.Power) (units.Frequency, bool) {
	best := units.Frequency(0)
	ok := false
	for _, p := range t.points {
		if p.P <= budget {
			best = p.F
			ok = true
		} else {
			break
		}
	}
	return best, ok
}

// PaperTable1 returns the paper's Table 1 verbatim: sixteen operating
// points from 250 MHz/9 W to 1 GHz/140 W in 50 MHz steps, the frequencies
// available to the scheduler on the p630. Voltages come from
// DefaultVoltageCurve since Table 1 lists only frequency and power; the
// platform's nominal point (1 GHz at 1.3 V, §7.1) anchors the curve.
func PaperTable1() *Table {
	curve := DefaultVoltageCurve()
	watts := []struct {
		mhz float64
		w   float64
	}{
		{250, 9}, {300, 13}, {350, 18}, {400, 22},
		{450, 28}, {500, 35}, {550, 41}, {600, 48},
		{650, 57}, {700, 66}, {750, 75}, {800, 84},
		{850, 95}, {900, 109}, {950, 123}, {1000, 140},
	}
	points := make([]OperatingPoint, len(watts))
	for i, e := range watts {
		f := units.MHz(e.mhz)
		points[i] = OperatingPoint{F: f, V: curve.VoltageFor(f), P: units.Watts(e.w)}
	}
	return MustTable(points)
}

// Section5Table returns the coarse five-setting table of the paper's §5
// worked example: {0.6, 0.7, 0.8, 0.9, 1.0} GHz with the corresponding
// Table 1 powers (48, 66, 84, 109, 140 W).
func Section5Table() *Table {
	curve := DefaultVoltageCurve()
	entries := []struct {
		mhz float64
		w   float64
	}{
		{600, 48}, {700, 66}, {800, 84}, {900, 109}, {1000, 140},
	}
	points := make([]OperatingPoint, len(entries))
	for i, e := range entries {
		f := units.MHz(e.mhz)
		points[i] = OperatingPoint{F: f, V: curve.VoltageFor(f), P: units.Watts(e.w)}
	}
	return MustTable(points)
}
