package cluster

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/units"
)

// A coordinator actuation spends one RTT in flight. If the node's machine
// is swapped (reprovisioned, reset) while the message is in transit, the
// stale actuation must be dropped rather than applied to the replacement,
// which the decision was never made for.
func TestStaleActuationNotAppliedAfterMachineSwap(t *testing.T) {
	// A budget of 200 W over two 4-CPU nodes forces demotions below f_max,
	// so in-flight actuations differ from a fresh machine's default.
	c := newTwoNodeCluster(t, units.Watts(200))

	// Run until a scheduling pass has queued actuations.
	for len(c.pending) == 0 {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	target := c.pending[0].proc.Node
	inflight := map[int]units.Frequency{}
	for _, p := range c.pending {
		if p.proc.Node == target {
			inflight[p.proc.CPU] = p.f
		}
	}

	// Swap the target node's machine while the actuations are in flight.
	mcfg := quietMachineConfig()
	mcfg.Seed = 99
	fresh, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[target].M = fresh
	defaults := make([]units.Frequency, fresh.NumCPUs())
	for cpu := range defaults {
		defaults[cpu] = fresh.EffectiveFrequency(cpu)
	}

	// Step past the RTT so every in-flight actuation matures, but stop
	// short of the next timer pass, which would legitimately re-actuate
	// the fresh machine.
	for i := 0; i < 3; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.pending) != 0 {
		t.Fatalf("%d actuations still in flight; test stepped too few quanta", len(c.pending))
	}
	for cpu, f := range inflight {
		if f == defaults[cpu] {
			continue // indistinguishable from the default; no signal
		}
		if got := fresh.EffectiveFrequency(cpu); got == f {
			t.Errorf("stale actuation %v delivered to swapped machine cpu %d", f, cpu)
		}
	}
}
