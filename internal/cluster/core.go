package cluster

import (
	"fmt"
	"math"
	"time"

	"repro/internal/farm"
	"repro/internal/fvsst"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

// ProcInput is one processor's contribution to a global scheduling pass:
// its address, the node name for traces, the idle indicator, and the
// counter-derived observation (nil when no usable counter data has
// reached the coordinator — the processor is then scheduled at f_max).
type ProcInput struct {
	Proc ProcRef
	Node string
	Idle bool
	Obs  *perfmodel.Observation
}

// PassResult is the outcome of one transport-independent global pass.
type PassResult struct {
	Assignments []Assignment
	Demotions   []fvsst.Demotion
	TablePower  units.Power
	BudgetMet   bool
	// Timings carries the wall-clock phase breakdown when the owning core
	// has SetPhaseTiming(true); the zero value means timing was off.
	Timings PassTimings
	// predIPC/predValid keep each processor's predicted IPC at its actual
	// setting for trace enrichment (predValid is false for idle or
	// unobserved processors).
	predIPC   []float64
	predValid []bool
}

// PassTimings is the wall-clock duration of each Figure-3 phase of one
// pass, in seconds. GridFill (decompose + per-frequency sweeps) is broken
// out of StepOne so the two child spans are disjoint.
type PassTimings struct {
	GridFill  float64
	StepOne   float64
	StepTwo   float64
	StepThree float64
}

// Core is the transport-independent heart of the cluster scheduler: the
// global two-pass fvsst algorithm (Figure 3 Steps 1–3) over an arbitrary
// set of processor observations. The in-process Coordinator and the
// networked netcluster coordinator are two transports over this one core
// — they differ only in how observations arrive and actuations depart.
//
// A Core owns a reusable prediction grid: each pass evaluates every
// observed processor's frequency sweep exactly once and Steps 1–2 and the
// trace enrichment read from it. Not safe for concurrent Schedule calls.
type Core struct {
	cfg  fvsst.Config
	pred perfmodel.Predictor
	set  units.FrequencySet

	// Per-pass scratch (see docs/engine.md for the ownership rules).
	grid       perfmodel.PredGrid
	desiredIdx []int
	actualIdx  []int
	demo       []fvsst.Demotion

	// timing gates the wall-clock phase breakdown (SetPhaseTiming);
	// timings is the per-pass scratch it fills.
	timing  bool
	timings PassTimings
}

// SetPhaseTiming toggles the per-phase wall-clock breakdown on Schedule
// results. Off by default: the coordinators enable it only when a trace
// sink is attached, keeping the no-sink hot path free of clock reads.
func (c *Core) SetPhaseTiming(on bool) { c.timing = on }

// NewCore validates the configuration and builds the shared core.
func NewCore(cfg fvsst.Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pred, err := perfmodel.New(cfg.Hier)
	if err != nil {
		return nil, err
	}
	return &Core{cfg: cfg, pred: pred, set: cfg.Table.Frequencies()}, nil
}

// Config returns the core's scheduler configuration.
func (c *Core) Config() fvsst.Config { return c.cfg }

// stepOne runs Step 1 onto the core's scratch: reset the prediction grid,
// fill every observed processor's frequency sweep, and pick each
// processor's desired index (minimum for idle, maximum for unobserved,
// the ε-constrained setting otherwise). Shared by Schedule, DemandCurve
// and UniformLoss.
func (c *Core) stepOne(inputs []ProcInput) error {
	var start time.Time
	var fill time.Duration
	if c.timing {
		c.timings = PassTimings{}
		start = time.Now()
	}
	n := len(inputs)
	c.grid.Reset(n, c.set)
	if cap(c.desiredIdx) < n {
		c.desiredIdx = make([]int, n)
		c.actualIdx = make([]int, n)
	}
	c.desiredIdx = c.desiredIdx[:n]
	c.actualIdx = c.actualIdx[:n]
	nf := c.grid.NumFreqs()

	for i, in := range inputs {
		if c.cfg.UseIdleSignal && in.Idle {
			c.desiredIdx[i] = 0 // set minimum
			continue
		}
		if in.Obs == nil {
			c.desiredIdx[i] = nf - 1 // set maximum
			continue
		}
		var t0 time.Time
		if c.timing {
			t0 = time.Now()
		}
		dec, err := c.pred.Decompose(*in.Obs)
		if err != nil {
			return fmt.Errorf("cluster: %s cpu %d: %w", in.Node, in.Proc.CPU, err)
		}
		c.grid.Fill(i, dec)
		if c.timing {
			fill += time.Since(t0)
		}
		if c.cfg.UseIdealFrequency {
			f, err := fvsst.IdealEpsilonFrequency(dec, c.set, c.cfg.Epsilon)
			if err != nil {
				return err
			}
			c.desiredIdx[i] = c.cfg.Table.IndexOf(f)
		} else {
			c.desiredIdx[i] = fvsst.EpsilonIndexGrid(&c.grid, i, c.cfg.Epsilon)
		}
	}
	if c.timing {
		c.timings.GridFill = fill.Seconds()
		c.timings.StepOne = (time.Since(start) - fill).Seconds()
	}
	return nil
}

// DemandCurve exports this processor set's budget→predicted-loss
// trade-off for the farm allocator: the first point is the Step-1
// ε-constrained desire, each further point applies one more least-loss
// Step-2 demotion (the same selection rule as fvsst.FitToBudgetGrid —
// invalid rows count as zero loss, ties break toward the higher current
// index), and the last point is the floor with every processor at the
// table minimum. Only the grid rows a scheduling pass fills anyway are
// evaluated, so the curve costs no extra prediction work.
func (c *Core) DemandCurve(inputs []ProcInput) (farm.DemandCurve, error) {
	curve, _, err := c.DemandCurveDesired(inputs)
	return curve, err
}

// DemandCurveDesired is DemandCurve plus a copy of the Step-1 desired
// table index per processor — the relay tier ships both upward so a root
// coordinator can replay the flat Step-2 arithmetic exactly
// (farm.DivideLeastLossExact). Each point's Power is re-summed from
// scratch in processor order, the same accumulation fvsst.FitToBudgetGrid
// uses for its stop test, so a member handed Points[k].Power as its
// budget demotes to exactly point k.
func (c *Core) DemandCurveDesired(inputs []ProcInput) (farm.DemandCurve, []int, error) {
	if len(inputs) == 0 {
		return farm.DemandCurve{}, nil, fmt.Errorf("cluster: demand curve needs at least one processor")
	}
	if err := c.stepOne(inputs); err != nil {
		return farm.DemandCurve{}, nil, err
	}
	copy(c.actualIdx, c.desiredIdx)
	desired := append([]int(nil), c.desiredIdx...)

	sumAt := func() units.Power {
		var s units.Power
		for _, idx := range c.actualIdx {
			s += c.cfg.Table.PowerAtIndex(idx)
		}
		return s
	}
	var sumLoss float64
	for i, idx := range c.actualIdx {
		if c.grid.Valid(i) {
			sumLoss += c.grid.Loss(i, idx)
		}
	}
	curve := farm.DemandCurve{Points: []farm.DemandPoint{{Power: sumAt(), Loss: sumLoss}}}
	for {
		best := -1
		bestLoss := math.Inf(1)
		for i, idx := range c.actualIdx {
			if idx == 0 {
				continue // already at minimum
			}
			loss := 0.0
			if c.grid.Valid(i) {
				loss = c.grid.Loss(i, idx-1)
			}
			if loss < bestLoss || (loss == bestLoss && best >= 0 && idx > c.actualIdx[best]) {
				best, bestLoss = i, loss
			}
		}
		if best < 0 {
			return curve, desired, nil // every processor at the floor
		}
		idx := c.actualIdx[best]
		if c.grid.Valid(best) {
			sumLoss += c.grid.Loss(best, idx-1) - c.grid.Loss(best, idx)
		}
		c.actualIdx[best] = idx - 1
		prev := curve.Points[len(curve.Points)-1]
		p := farm.DemandPoint{
			Power: sumAt(),
			Loss:  sumLoss,
			Step:  farm.StepKey{Loss: bestLoss, Idx: idx, Proc: best},
		}
		if p.Loss < prev.Loss {
			p.Loss = prev.Loss // absorb float jitter; model loss is monotone in frequency
		}
		if p.Power < prev.Power {
			curve.Points = append(curve.Points, p)
		}
	}
}

// UniformLoss predicts the aggregate performance loss of pinning every
// processor at one table index — the uniform-slowdown baseline the farm
// experiment compares against. Idle and unobserved processors contribute
// zero, exactly as in the demand curve and Step 2.
func (c *Core) UniformLoss(inputs []ProcInput, fi int) (float64, error) {
	if fi < 0 || fi >= c.cfg.Table.Len() {
		return 0, fmt.Errorf("cluster: uniform index %d outside table of %d points", fi, c.cfg.Table.Len())
	}
	if err := c.stepOne(inputs); err != nil {
		return 0, err
	}
	var sum float64
	for i := range inputs {
		if c.grid.Valid(i) {
			sum += c.grid.Loss(i, fi)
		}
	}
	return sum, nil
}

// Schedule runs Steps 1–3 across the given processors under the budget.
// Step 1 picks each processor's ε-constrained desire (minimum setting for
// idle processors when the idle signal is enabled, f_max when no counter
// data is available); Step 2 demotes least-loss processors until the
// aggregate table power fits the budget; Step 3 assigns minimum voltages.
// The returned Assignments and Demotions are freshly allocated (callers
// retain them in decision logs); the intermediate per-frequency work runs
// on the core's reusable scratch.
func (c *Core) Schedule(inputs []ProcInput, budget units.Power) (PassResult, error) {
	if err := c.stepOne(inputs); err != nil {
		return PassResult{}, err
	}
	n := len(inputs)
	copy(c.actualIdx, c.desiredIdx)
	var t2 time.Time
	if c.timing {
		t2 = time.Now()
	}
	demotions, met := fvsst.FitToBudgetGrid(&c.grid, c.actualIdx, c.cfg.Table, budget, c.demo[:0])
	c.demo = demotions[:0] // keep any grown backing array
	var t3 time.Time
	if c.timing {
		t3 = time.Now()
		c.timings.StepTwo = t3.Sub(t2).Seconds()
	}

	var tablePower units.Power
	assignments := make([]Assignment, n)
	predIPC := make([]float64, n)
	predValid := make([]bool, n)
	for i, in := range inputs {
		ai := c.actualIdx[i]
		tablePower += c.cfg.Table.PowerAtIndex(ai)
		a := Assignment{
			Proc:    in.Proc,
			Desired: c.cfg.Table.FrequencyAtIndex(c.desiredIdx[i]),
			Actual:  c.cfg.Table.FrequencyAtIndex(ai),
			Voltage: c.cfg.Table.VoltageAtIndex(ai),
			Idle:    in.Idle,
		}
		if c.grid.Valid(i) {
			a.PredictedLoss = c.grid.Loss(i, ai)
			predIPC[i] = c.grid.IPC(i, ai)
			predValid[i] = true
		}
		assignments[i] = a
	}
	res := PassResult{
		Assignments: assignments,
		TablePower:  tablePower,
		BudgetMet:   met,
		predIPC:     predIPC,
		predValid:   predValid,
	}
	if c.timing {
		// The assignment/voltage loop above is the Step-3 share of the pass.
		c.timings.StepThree = time.Since(t3).Seconds()
		res.Timings = c.timings
	}
	if len(demotions) > 0 {
		res.Demotions = append([]fvsst.Demotion(nil), demotions...)
	}
	return res, nil
}

// PassEvent renders a pass as the obs.EventSchedule both cluster backends
// emit: node-labelled CPU traces with predictions, and Step-2 demotions
// translated from flat proc indexes back to (node, cpu) addresses.
func PassEvent(at float64, trigger string, budget units.Power, inputs []ProcInput, res PassResult) obs.Event {
	ev := obs.Event{
		Type:         obs.EventSchedule,
		At:           at,
		Trigger:      trigger,
		BudgetW:      budget.W(),
		TablePowerW:  res.TablePower.W(),
		HeadroomW:    budget.W() - res.TablePower.W(),
		BudgetMissed: !res.BudgetMet,
		CPUs:         make([]obs.CPUTrace, len(res.Assignments)),
	}
	for i, a := range res.Assignments {
		ct := obs.CPUTrace{
			CPU:        a.Proc.CPU,
			Node:       inputs[i].Node,
			Idle:       a.Idle,
			DesiredMHz: a.Desired.MHz(),
			ActualMHz:  a.Actual.MHz(),
			VoltageV:   a.Voltage.V(),
		}
		if res.predValid != nil && res.predValid[i] {
			ct.PredictedLoss = a.PredictedLoss
			ct.PredictedIPC = res.predIPC[i]
		}
		if o := inputs[i].Obs; o != nil {
			d := o.Delta
			ct.Obs = &obs.ObsTrace{
				WindowS:      d.Window,
				Instructions: d.Instructions,
				Cycles:       d.Cycles,
				HaltedCycles: d.HaltedCycles,
				L2Refs:       d.L2Refs,
				L3Refs:       d.L3Refs,
				MemRefs:      d.MemRefs,
				FreqHz:       o.Freq.Hz(),
			}
		}
		ev.CPUs[i] = ct
	}
	for _, dm := range res.Demotions {
		in := inputs[dm.CPU]
		ev.Demotions = append(ev.Demotions, obs.DemotionTrace{
			CPU:           in.Proc.CPU,
			Node:          in.Node,
			FromMHz:       dm.From.MHz(),
			ToMHz:         dm.To.MHz(),
			PredictedLoss: dm.PredictedLoss,
		})
	}
	return ev
}

// EmitStepSpans emits the Figure-3 phase children of one pass's span tree
// (grid-fill, step1, step2, step3) from a timed PassResult. Callers emit
// these only when a sink is attached and SetPhaseTiming was enabled.
func EmitStepSpans(sink obs.Sink, at float64, passID uint64, t PassTimings) {
	sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanGridFill, obs.SpanPass, t.GridFill))
	sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanStepOne, obs.SpanPass, t.StepOne))
	sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanStepTwo, obs.SpanPass, t.StepTwo))
	sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanStepThree, obs.SpanPass, t.StepThree))
}
