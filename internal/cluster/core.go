package cluster

import (
	"fmt"

	"repro/internal/fvsst"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

// ProcInput is one processor's contribution to a global scheduling pass:
// its address, the node name for traces, the idle indicator, and the
// counter-derived observation (nil when no usable counter data has
// reached the coordinator — the processor is then scheduled at f_max).
type ProcInput struct {
	Proc ProcRef
	Node string
	Idle bool
	Obs  *perfmodel.Observation
}

// PassResult is the outcome of one transport-independent global pass.
type PassResult struct {
	Assignments []Assignment
	Demotions   []fvsst.Demotion
	TablePower  units.Power
	BudgetMet   bool
	// decs keeps the per-proc decompositions for trace enrichment.
	decs []*perfmodel.Decomposition
}

// Core is the transport-independent heart of the cluster scheduler: the
// global two-pass fvsst algorithm (Figure 3 Steps 1–3) over an arbitrary
// set of processor observations. The in-process Coordinator and the
// networked netcluster coordinator are two transports over this one core
// — they differ only in how observations arrive and actuations depart.
type Core struct {
	cfg  fvsst.Config
	pred perfmodel.Predictor
}

// NewCore validates the configuration and builds the shared core.
func NewCore(cfg fvsst.Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pred, err := perfmodel.New(cfg.Hier)
	if err != nil {
		return nil, err
	}
	return &Core{cfg: cfg, pred: pred}, nil
}

// Config returns the core's scheduler configuration.
func (c *Core) Config() fvsst.Config { return c.cfg }

// Schedule runs Steps 1–3 across the given processors under the budget.
// Step 1 picks each processor's ε-constrained desire (minimum setting for
// idle processors when the idle signal is enabled, f_max when no counter
// data is available); Step 2 demotes least-loss processors until the
// aggregate table power fits the budget; Step 3 assigns minimum voltages.
func (c *Core) Schedule(inputs []ProcInput, budget units.Power) (PassResult, error) {
	set := c.cfg.Table.Frequencies()
	desired := make([]units.Frequency, len(inputs))
	decs := make([]*perfmodel.Decomposition, len(inputs))

	for i, in := range inputs {
		if c.cfg.UseIdleSignal && in.Idle {
			desired[i] = set.Min()
			continue
		}
		if in.Obs == nil {
			desired[i] = set.Max()
			continue
		}
		dec, err := c.pred.Decompose(*in.Obs)
		if err != nil {
			return PassResult{}, fmt.Errorf("cluster: %s cpu %d: %w", in.Node, in.Proc.CPU, err)
		}
		decs[i] = &dec
		if c.cfg.UseIdealFrequency {
			f, err := fvsst.IdealEpsilonFrequency(dec, set, c.cfg.Epsilon)
			if err != nil {
				return PassResult{}, err
			}
			desired[i] = f
		} else {
			desired[i] = fvsst.EpsilonFrequency(dec, set, c.cfg.Epsilon)
		}
	}

	actual, demotions, met, err := fvsst.FitToBudgetTraced(decs, desired, c.cfg.Table, budget)
	if err != nil {
		return PassResult{}, err
	}
	volts, err := fvsst.Voltages(actual, c.cfg.Table)
	if err != nil {
		return PassResult{}, err
	}
	tablePower, err := fvsst.TotalTablePower(actual, c.cfg.Table)
	if err != nil {
		return PassResult{}, err
	}

	assignments := make([]Assignment, len(inputs))
	for i, in := range inputs {
		a := Assignment{
			Proc:    in.Proc,
			Desired: desired[i],
			Actual:  actual[i],
			Voltage: volts[i],
			Idle:    in.Idle,
		}
		if decs[i] != nil {
			a.PredictedLoss = decs[i].PerfLoss(set.Max(), actual[i])
		}
		assignments[i] = a
	}
	return PassResult{
		Assignments: assignments,
		Demotions:   demotions,
		TablePower:  tablePower,
		BudgetMet:   met,
		decs:        decs,
	}, nil
}

// PassEvent renders a pass as the obs.EventSchedule both cluster backends
// emit: node-labelled CPU traces with predictions, and Step-2 demotions
// translated from flat proc indexes back to (node, cpu) addresses.
func PassEvent(at float64, trigger string, budget units.Power, inputs []ProcInput, res PassResult) obs.Event {
	ev := obs.Event{
		Type:         obs.EventSchedule,
		At:           at,
		Trigger:      trigger,
		BudgetW:      budget.W(),
		TablePowerW:  res.TablePower.W(),
		HeadroomW:    budget.W() - res.TablePower.W(),
		BudgetMissed: !res.BudgetMet,
		CPUs:         make([]obs.CPUTrace, len(res.Assignments)),
	}
	for i, a := range res.Assignments {
		ct := obs.CPUTrace{
			CPU:        a.Proc.CPU,
			Node:       inputs[i].Node,
			Idle:       a.Idle,
			DesiredMHz: a.Desired.MHz(),
			ActualMHz:  a.Actual.MHz(),
			VoltageV:   a.Voltage.V(),
		}
		if res.decs != nil && res.decs[i] != nil {
			ct.PredictedLoss = a.PredictedLoss
			ct.PredictedIPC = res.decs[i].IPCAt(a.Actual)
		}
		ev.CPUs[i] = ct
	}
	for _, dm := range res.Demotions {
		in := inputs[dm.CPU]
		ev.Demotions = append(ev.Demotions, obs.DemotionTrace{
			CPU:           in.Proc.CPU,
			Node:          in.Node,
			FromMHz:       dm.From.MHz(),
			ToMHz:         dm.To.MHz(),
			PredictedLoss: dm.PredictedLoss,
		})
	}
	return ev
}
