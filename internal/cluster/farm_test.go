package cluster

import (
	"math"
	"testing"

	"repro/internal/farm"
	"repro/internal/units"
)

// TestDemandCurveShape: after some run time the cluster exports a valid
// curve whose floor is every processor at the table minimum.
func TestDemandCurveShape(t *testing.T) {
	c := newTwoNodeCluster(t, units.Watts(1200))
	if err := c.Run(0.5); err != nil {
		t.Fatal(err)
	}
	curve, err := c.DemandCurve()
	if err != nil {
		t.Fatal(err)
	}
	if err := curve.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) < 2 {
		t.Fatalf("curve has %d points; busy CPUs should leave demotion room", len(curve.Points))
	}
	if got, want := curve.Floor(), c.FloorPower(); got != want {
		t.Errorf("curve floor %v, want the all-minimum power %v", got, want)
	}
	if curve.Desired() <= curve.Floor() {
		t.Errorf("desire %v not above floor %v", curve.Desired(), curve.Floor())
	}
}

// TestDemandCurveMatchesSchedule is the faithfulness property that makes
// the farm layer's predictions honest: for any budget, the cheapest curve
// point that fits is exactly the (power, loss) a real Step-2 pass lands
// on over the same inputs, because both walk the same greedy trajectory.
func TestDemandCurveMatchesSchedule(t *testing.T) {
	c := newTwoNodeCluster(t, units.Watts(1200))
	if err := c.Run(0.5); err != nil {
		t.Fatal(err)
	}
	_, inputs := c.buildInputs()
	curve, err := c.core.DemandCurve(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []units.Power{curve.Desired() + 10, 600, 300, 150, curve.Floor()} {
		res, err := c.core.Schedule(inputs, budget)
		if err != nil {
			t.Fatal(err)
		}
		var passLoss float64
		for _, a := range res.Assignments {
			passLoss += a.PredictedLoss
		}
		wantLoss, ok := curve.LossAt(budget)
		if !ok {
			t.Fatalf("budget %v below the curve floor %v", budget, curve.Floor())
		}
		if math.Abs(passLoss-wantLoss) > 1e-9 {
			t.Errorf("budget %v: pass loss %.12f, curve loss %.12f", budget, passLoss, wantLoss)
		}
		// The pass's table power must be the curve point LossAt chose.
		found := false
		for _, p := range curve.Points {
			if p.Power == res.TablePower {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("budget %v: pass table power %v is not a curve point", budget, res.TablePower)
		}
	}
}

// TestCoordinatorBudgetSourceHolder plugs a farm lease Holder in as the
// coordinator's budget source: grants and expiries both become
// budget-change passes, and the budget tracks lease → floor.
func TestCoordinatorBudgetSourceHolder(t *testing.T) {
	c := newTwoNodeCluster(t, units.Watts(900))
	h, err := farm.NewHolder("pair", units.Watts(200), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBudgetSource(h)
	// No lease yet: the first step drops the budget to the holder's floor.
	if err := c.Run(0.2); err != nil {
		t.Fatal(err)
	}
	if got := c.Budget(); got.W() != 200 {
		t.Fatalf("budget with no lease = %v, want the 200W floor", got)
	}
	h.Grant(farm.Lease{Member: "pair", Budget: units.Watts(600), Granted: c.Now(), Expires: c.Now() + 0.3})
	if err := c.Run(c.Now() + 0.1); err != nil {
		t.Fatal(err)
	}
	if got := c.Budget(); got.W() != 600 {
		t.Fatalf("budget mid-lease = %v, want the 600W grant", got)
	}
	if err := c.Run(c.Now() + 0.4); err != nil {
		t.Fatal(err)
	}
	if got := c.Budget(); got.W() != 200 {
		t.Fatalf("budget past expiry = %v, want the floor again", got)
	}
	var changes int
	for _, d := range c.Decisions() {
		if d.Trigger == "budget-change" {
			changes++
		}
	}
	if changes < 3 {
		t.Errorf("%d budget-change passes, want ≥ 3 (floor, grant, expiry)", changes)
	}
}

// TestUniformLoss pins the baseline helper: full speed predicts no loss,
// the table minimum predicts the most, indexes out of range error.
func TestUniformLoss(t *testing.T) {
	c := newTwoNodeCluster(t, units.Watts(1200))
	if err := c.Run(0.5); err != nil {
		t.Fatal(err)
	}
	top := c.cfg.Table.Len() - 1
	atTop, err := c.UniformLoss(top)
	if err != nil {
		t.Fatal(err)
	}
	atMin, err := c.UniformLoss(0)
	if err != nil {
		t.Fatal(err)
	}
	if atTop > 1e-9 {
		t.Errorf("loss at full speed = %v, want ~0", atTop)
	}
	if atMin <= atTop {
		t.Errorf("loss at minimum (%v) not above loss at maximum (%v)", atMin, atTop)
	}
	if _, err := c.UniformLoss(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := c.UniformLoss(c.cfg.Table.Len()); err == nil {
		t.Error("out-of-range index accepted")
	}
}
