package cluster

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

// clusterFingerprint renders everything RunDES must preserve: every
// decision with its assignments, every node machine's clock, energy and
// counters, and the completion log — all through %v so single-bit float
// drift shows.
func clusterFingerprint(c *Coordinator) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v budget=%v pending=%d\n", c.Now(), c.Budget(), len(c.pending))
	for _, d := range c.Decisions() {
		fmt.Fprintf(&b, "pass %v %s %v %v %v\n", d.At, d.Trigger, d.Budget, d.TablePower, d.BudgetMet)
		for _, a := range d.Assignments {
			fmt.Fprintf(&b, "  %d/%d %v %v %v %v %v\n",
				a.Proc.Node, a.Proc.CPU, a.Desired, a.Actual, a.Voltage, a.PredictedLoss, a.Idle)
		}
	}
	for _, n := range c.nodes {
		fmt.Fprintf(&b, "node %s t=%v e=%v ce=%v\n", n.Name, n.M.Now(), n.M.Energy(), n.M.CPUEnergy())
		for i := 0; i < n.M.NumCPUs(); i++ {
			s, err := n.M.ReadCounters(i)
			if err != nil {
				panic(err)
			}
			fmt.Fprintf(&b, "  cpu%d %+v f=%v\n", i, s, n.M.EffectiveFrequency(i))
		}
	}
	for _, jc := range c.Completions() {
		fmt.Fprintf(&b, "done %s/%d %s %v\n", jc.Node, jc.CPU, jc.Program, jc.At)
	}
	return b.String()
}

// diffCluster builds two coordinators via mk, runs one with the quantum
// engine and one on the DES path, and requires byte-identical state at
// every checkpoint.
func diffCluster(t *testing.T, mk func() *Coordinator, checkpoints []float64) {
	t.Helper()
	ref, des := mk(), mk()
	for _, ck := range checkpoints {
		if err := ref.Run(ck); err != nil {
			t.Fatalf("Run(%v): %v", ck, err)
		}
		if err := des.RunDES(ck); err != nil {
			t.Fatalf("RunDES(%v): %v", ck, err)
		}
		want, got := clusterFingerprint(ref), clusterFingerprint(des)
		if got != want {
			t.Fatalf("diverged at t=%v:\n--- Run ---\n%s--- RunDES ---\n%s", ck, want, got)
		}
	}
}

func TestRunDESMatchesRunTiered(t *testing.T) {
	mk := func() *Coordinator {
		nodes, err := Tiered(quietMachineConfig(), 0.02)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(clusterConfig(), units.Watts(900), nodes...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	diffCluster(t, mk, []float64{0.3, 1.0, 2.5, 6.0})
}

func TestRunDESMatchesRunBudgetSchedule(t *testing.T) {
	mk := func() *Coordinator {
		c := newTwoNodeCluster(t, units.Watts(900))
		sched, err := power.NewBudgetSchedule(units.Watts(900),
			power.BudgetEvent{At: 0.8, Budget: units.Watts(500), Label: "fail"},
			power.BudgetEvent{At: 2.2, Budget: units.Watts(900), Label: "restore"},
		)
		if err != nil {
			t.Fatal(err)
		}
		c.Budgets = sched
		return c
	}
	diffCluster(t, mk, []float64{0.5, 1.0, 3.0, 5.0})
}

func TestRunDESMatchesRunWithArrivals(t *testing.T) {
	// Idle gaps between arrival bursts are where skipping actually pays;
	// the machines must absorb the bursts identically.
	mk := func() *Coordinator {
		c := newTwoNodeCluster(t, units.Watts(700))
		for ni, n := range c.Nodes() {
			var sched workload.Schedule
			for k := 0; k < 3; k++ {
				sched = append(sched, workload.Arrival{
					At:      0.9 + float64(k)*1.7 + float64(ni)*0.3,
					CPU:     (k + ni) % n.M.NumCPUs(),
					Program: workload.Gzip(0.002),
				})
			}
			if err := n.M.Submit(sched); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	diffCluster(t, mk, []float64{0.5, 2.0, 4.0, 8.0})
}

func TestRunDESHeterogeneousQuanta(t *testing.T) {
	// One node runs a 5 ms machine under a 10 ms coordinator cadence: New
	// accepts it, both engines advance it to each cadence edge, and the
	// differential still holds byte for byte.
	mk := func() *Coordinator {
		mkNode := func(name string, quantum float64, seed int64) *Node {
			mcfg := quietMachineConfig()
			mcfg.Quantum = quantum
			mcfg.Seed = seed
			m, err := machine.New(mcfg)
			if err != nil {
				t.Fatal(err)
			}
			mix, err := workload.NewMix(cpuProg(2e9))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.SetMix(0, mix); err != nil {
				t.Fatal(err)
			}
			return &Node{Name: name, M: m, RTT: 0.005}
		}
		c, err := New(clusterConfig(), units.Watts(700),
			mkNode("coarse", 0.010, 1), mkNode("fine", 0.005, 2))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	diffCluster(t, mk, []float64{0.5, 2.0, 5.0})
}

func TestStaleWindowsMatchesQuantumRule(t *testing.T) {
	// With every window exactly one quantum long, seconds-based staleness
	// reproduces the old ⌈RTT/quantum⌉ window count.
	c := newTwoNodeCluster(t, units.Watts(900))
	if err := c.Run(1.0); err != nil {
		t.Fatal(err)
	}
	hist := c.nodes[0].sampler.History(0)
	q := c.loop.Quantum()
	for _, tc := range []struct {
		rtt  float64
		want int
	}{{0, 0}, {0.005, 1}, {0.010, 1}, {0.015, 2}, {0.045, 5}} {
		if got := staleWindows(hist, tc.rtt); got != tc.want {
			t.Errorf("staleWindows(rtt=%v) = %d, want %d (q=%v)", tc.rtt, got, tc.want, q)
		}
	}
}
