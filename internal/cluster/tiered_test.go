package cluster

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestNewTieredNodeWrapsProgramsRoundRobin(t *testing.T) {
	// Six programs on a 4-CPU node: CPUs 0 and 1 get two jobs each.
	var progs []workload.Program
	for i := 0; i < 6; i++ {
		progs = append(progs, cpuProg(1e9))
	}
	n, err := NewTieredNode(quietMachineConfig(), TierSpec{
		Name: "dense", Programs: progs, RTT: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJobs := []int{2, 2, 1, 1}
	for cpu, want := range wantJobs {
		mix := n.M.Mix(cpu)
		if mix == nil {
			t.Fatalf("cpu %d has no mix", cpu)
		}
		if got := len(mix.Jobs()); got != want {
			t.Errorf("cpu %d jobs = %d, want %d", cpu, got, want)
		}
	}
}

func TestNewTieredNodeRejectsBadProgram(t *testing.T) {
	_, err := NewTieredNode(quietMachineConfig(), TierSpec{
		Name: "bad", Programs: []workload.Program{{}},
	})
	if err == nil {
		t.Error("invalid program accepted")
	}
}

func TestCoordinatorAccessors(t *testing.T) {
	m, err := machine.New(quietMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	mix, _ := workload.NewMix(cpuProg(5e8))
	m.SetMix(0, mix)
	c, err := New(clusterConfig(), units.Watts(700), &Node{Name: "n", M: m, RTT: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if c.Now() != 0 {
		t.Errorf("fresh Now = %v", c.Now())
	}
	if c.Budget().W() != 700 {
		t.Errorf("Budget = %v", c.Budget())
	}
	if len(c.Nodes()) != 1 {
		t.Errorf("Nodes = %d", len(c.Nodes()))
	}
	// Deadline path of RunUntilAllDone.
	done, err := c.RunUntilAllDone(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Error("0.5 Ginstr cannot finish in 50 ms")
	}
	if c.Now() < 0.05 {
		t.Errorf("Now = %v after deadline run", c.Now())
	}
}
