package cluster

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/units"
)

// TestCoordinatorEmitsNodeLabelledEvents: the coordinator's sink sees one
// schedule event per global pass, with every CPU trace carrying its node
// name, and Step-2 demotions attributed to (node, cpu) when the budget is
// tight enough to force reductions.
func TestCoordinatorEmitsNodeLabelledEvents(t *testing.T) {
	// 150 W across two 4-way nodes forces Step-2 demotions every pass.
	c := newTwoNodeCluster(t, units.Watts(150))
	var buf obs.Buffer
	c.SetSink(&buf)
	if err := c.Run(0.5); err != nil {
		t.Fatal(err)
	}
	schedules := buf.Count(obs.EventSchedule, "")
	if got := len(c.Decisions()); schedules != got {
		t.Errorf("%d schedule events for %d decisions", schedules, got)
	}
	if schedules == 0 {
		t.Fatal("no schedule events")
	}
	if q := buf.Count(obs.EventQuantum, ""); q == 0 {
		t.Error("no quantum events")
	}
	names := map[string]bool{}
	demotions := 0
	for _, e := range buf.Events() {
		if e.Type != obs.EventSchedule {
			continue
		}
		if len(e.CPUs) != 8 {
			t.Fatalf("schedule event has %d CPU traces, want 8", len(e.CPUs))
		}
		for _, ct := range e.CPUs {
			if ct.Node == "" {
				t.Fatalf("CPU trace missing node name: %+v", ct)
			}
			names[ct.Node] = true
		}
		for _, dm := range e.Demotions {
			if dm.Node == "" || dm.FromMHz <= dm.ToMHz {
				t.Fatalf("bad demotion trace: %+v", dm)
			}
			demotions++
		}
	}
	if len(names) != 2 {
		t.Errorf("node names in traces = %v, want 2 nodes", names)
	}
	if demotions == 0 {
		t.Error("tight budget produced no demotion traces")
	}
}
