// Package cluster extends the fvsst scheduler from a single SMP to a
// server cluster (§1, §5): several nodes, each its own machine with local
// performance counters, coordinated by one scheduler that enforces a
// *global* power budget. The coordinator communicates with nodes over a
// modelled network: counter data arrives one RTT stale and frequency
// actuations take one RTT to land — the inter-node communication overhead
// §5 says the long scheduling period T amortises.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/farm"
	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

// Node is one cluster member.
type Node struct {
	Name string
	M    *machine.Machine
	// RTT is the one-way coordinator↔node message latency in seconds.
	RTT float64

	sampler *counters.Sampler
}

// Validate checks the node.
func (n *Node) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("cluster: node needs a name")
	}
	if n.M == nil {
		return fmt.Errorf("cluster: node %s has no machine", n.Name)
	}
	if n.RTT < 0 {
		return fmt.Errorf("cluster: node %s has negative RTT", n.Name)
	}
	return nil
}

// ProcRef addresses one processor in the cluster.
type ProcRef struct {
	Node int
	CPU  int
}

// Assignment is the coordinator's decision for one processor.
type Assignment struct {
	Proc          ProcRef
	Desired       units.Frequency
	Actual        units.Frequency
	Voltage       units.Voltage
	PredictedLoss float64
	Idle          bool
}

// Decision is one global scheduling pass.
type Decision struct {
	At          float64
	Trigger     string
	Budget      units.Power
	TablePower  units.Power
	BudgetMet   bool
	Assignments []Assignment
}

type pendingActuation struct {
	due  float64
	proc ProcRef
	f    units.Frequency
	// m is the machine the actuation was scheduled against. If the node's
	// machine is swapped or reset while the message is in flight, the
	// stale actuation must not land on the replacement.
	m *machine.Machine
}

// Coordinator runs the global frequency/voltage schedule across all nodes.
type Coordinator struct {
	cfg    fvsst.Config
	core   *Core
	nodes  []*Node
	budget units.Power
	// Budgets optionally drives the global budget over time.
	Budgets *power.BudgetSchedule
	// source, when set, overrides Budgets with a farm-layer budget source —
	// a lease Holder under a farm allocator, a UPS runway governor, or a
	// schedule adapter. Either way a change fires the budget-change trigger.
	source farm.BudgetSource

	pending   []pendingActuation
	decisions []Decision
	// loop owns the cluster's simulated time and the collect-every-quantum /
	// schedule-every-T cadence (engine.Loop replaces the coordinator's old
	// hand-rolled now/quantum/collects accumulators).
	loop *engine.Loop
	sink obs.Sink
	// passID counts global passes from the engine clock epoch; it stamps
	// the pass's schedule event and spans (obs.Event.PassID).
	passID uint64
	// beforeQuantum/afterQuantum bracket the lockstep machine stepping —
	// the hook serving stations use to deliver arrivals and expire
	// timeouts per node (see SetQuantumHook).
	beforeQuantum func(now float64)
	afterQuantum  func(now float64)
	// homogeneous records whether every machine shares the coordinator's
	// cadence quantum (the exact-lockstep fast case).
	homogeneous bool
	// wakers bound how far RunDES may skip while quantum hooks are
	// installed (see AddWaker).
	wakers []Waker
}

// New builds a coordinator over the nodes with a global processor power
// budget. The coordinator's collect/schedule cadence follows the first
// node's dispatch quantum; nodes whose machines run a different (e.g.
// finer) quantum are advanced to each cadence edge with the machine's
// variable-dt path instead of stepping in exact lockstep. Counter
// staleness is measured in simulated seconds of RTT, never in quanta, so
// the mixed-quantum case observes the same wall-clock lag.
func New(cfg fvsst.Config, budget units.Power, nodes ...*Node) (*Coordinator, error) {
	core, err := NewCore(cfg)
	if err != nil {
		return nil, err
	}
	if budget <= 0 {
		return nil, fmt.Errorf("cluster: budget %v must be positive", budget)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: at least one node required")
	}
	for _, n := range nodes {
		if err := n.Validate(); err != nil {
			return nil, err
		}
	}
	quantum := nodes[0].M.Config().Quantum
	homogeneous := true
	for _, n := range nodes {
		if n.M.Config().Quantum != quantum {
			homogeneous = false
		}
		// History capacity: the aggregation window plus the most windows an
		// RTT can hold in flight (each collected window spans at least one
		// cadence quantum).
		sampler, err := counters.NewSampler(n.M, 4*cfg.SchedulePeriods+int(math.Ceil(n.RTT/quantum)))
		if err != nil {
			return nil, err
		}
		n.sampler = sampler
	}
	loop, err := engine.NewLoop(quantum, cfg.SchedulePeriods)
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg:         cfg,
		core:        core,
		nodes:       nodes,
		budget:      budget,
		loop:        loop,
		homogeneous: homogeneous,
	}, nil
}

// Nodes returns the cluster's nodes.
func (c *Coordinator) Nodes() []*Node { return c.nodes }

// SetSink attaches an observability sink: one obs.EventSchedule per
// global pass (CPU traces and demotions carry the node name), one
// obs.EventQuantum per Step with the aggregate cluster power, and the
// per-pass span tree (pass root plus grid-fill/step1/step2/step3/actuate
// children). A nil sink — the default — disables tracing and the phase
// clock reads with it.
func (c *Coordinator) SetSink(sink obs.Sink) {
	c.sink = sink
	c.core.SetPhaseTiming(sink != nil)
}

// SetQuantumHook brackets every Step's machine advance: before runs
// just ahead of the lockstep node stepping (with the pre-step time),
// after just behind it (with the post-step time). Request-serving
// stations hang off this hook — before delivers matured arrivals and
// starts idle CPUs, after expires queue-wait timeouts and emits serve
// events — so open workloads ride under a coordinator without the
// coordinator knowing about queues. Either function may be nil.
func (c *Coordinator) SetQuantumHook(before, after func(now float64)) {
	c.beforeQuantum = before
	c.afterQuantum = after
}

// SetBudgetSource drives the global budget from a farm.BudgetSource
// instead of the Budgets schedule (the source wins when both are set).
// This is how a cluster plugs into the farm layer: hand it the farm.Holder
// holding its lease and every grant or expiry becomes a budget-change pass.
func (c *Coordinator) SetBudgetSource(src farm.BudgetSource) { c.source = src }

// Now returns the cluster simulation time.
func (c *Coordinator) Now() float64 { return c.loop.Now() }

// Budget returns the current global budget.
func (c *Coordinator) Budget() units.Power { return c.budget }

// TotalCPUPower returns the aggregate processor power across all nodes.
func (c *Coordinator) TotalCPUPower() units.Power {
	var sum units.Power
	for _, n := range c.nodes {
		sum += n.M.TotalCPUPower()
	}
	return sum
}

// procs enumerates every processor in the cluster in (node, cpu) order.
func (c *Coordinator) procs() []ProcRef {
	var out []ProcRef
	for ni, n := range c.nodes {
		for cpu := 0; cpu < n.M.NumCPUs(); cpu++ {
			out = append(out, ProcRef{Node: ni, CPU: cpu})
		}
	}
	return out
}

// Step advances every node by one dispatch quantum and runs the
// coordinator's collect/schedule protocol.
func (c *Coordinator) Step() error {
	// Budget change trigger.
	if want := c.budgetWant(); want != c.budget {
		c.budget = want
		if err := c.schedule("budget-change"); err != nil {
			return err
		}
	}

	// Deliver matured actuations (they spent one RTT in flight).
	kept := c.pending[:0]
	for _, p := range c.pending {
		if p.due <= c.loop.Now() {
			n := c.nodes[p.proc.Node]
			if n.M != p.m {
				// The node's machine was swapped or reset while this
				// actuation was in flight; delivering it would apply a
				// decision made against a machine that no longer exists.
				continue
			}
			if err := n.M.SetFrequency(p.proc.CPU, p.f); err != nil {
				return fmt.Errorf("cluster: actuate %s cpu %d: %w", n.Name, p.proc.CPU, err)
			}
		} else {
			kept = append(kept, p)
		}
	}
	c.pending = kept

	if c.beforeQuantum != nil {
		c.beforeQuantum(c.loop.Now())
	}
	for _, n := range c.nodes {
		if err := c.advanceNode(n); err != nil {
			return err
		}
		if err := n.sampler.Collect(); err != nil {
			return err
		}
	}
	due := c.loop.Tick()
	if c.afterQuantum != nil {
		c.afterQuantum(c.loop.Now())
	}

	if c.sink != nil {
		c.sink.Emit(obs.Event{
			Type:      obs.EventQuantum,
			At:        c.loop.Now(),
			BudgetW:   c.budget.W(),
			CPUPowerW: c.TotalCPUPower().W(),
		})
	}

	if due {
		return c.schedule("timer")
	}
	return nil
}

// advanceNode moves one node's machine through the current cadence
// quantum: the exact per-quantum step when the machine shares the
// coordinator's quantum, the variable-dt advance to the quantum's end
// otherwise. Machine accounting failures surface as *machine.StepError.
func (c *Coordinator) advanceNode(n *Node) error {
	if c.homogeneous {
		return n.M.StepQuantum()
	}
	return n.M.AdvanceTo(c.loop.Now() + c.loop.Quantum())
}

// staleWindows returns how many of the newest history windows are still
// in flight to the coordinator: staleness is the node's RTT in simulated
// seconds, so windows are skipped until their combined span covers it.
// (With every window exactly one quantum long this equals the old
// ⌈RTT/quantum⌉ rule.)
func staleWindows(hist *counters.History, rtt float64) int {
	skip := 0
	var span float64
	for skip < hist.Len() && span < rtt {
		span += hist.Last(skip).Window
		skip++
	}
	return skip
}

// observation builds the (stale) observation for a processor: the most
// recent RTT's worth of windows has not reached the coordinator yet, so the
// aggregate skips them.
func (c *Coordinator) observation(p ProcRef) (perfmodel.Observation, bool) {
	n := c.nodes[p.Node]
	hist := n.sampler.History(p.CPU)
	skip := staleWindows(hist, n.RTT)
	if hist.Len() <= skip {
		return perfmodel.Observation{}, false
	}
	var agg counters.Delta
	count := 0
	for i := skip; i < hist.Len() && count < c.cfg.SchedulePeriods; i++ {
		agg = agg.Add(hist.Last(i))
		count++
	}
	fHz := agg.ObservedFrequencyHz()
	if agg.Instructions == 0 || agg.Cycles == 0 || fHz <= 0 {
		return perfmodel.Observation{}, false
	}
	return perfmodel.Observation{Delta: agg, Freq: units.Frequency(fHz)}, true
}

// buildInputs assembles the per-processor inputs a global pass sees: the
// idle signal and the RTT-stale counter observations. Shared by schedule
// and DemandCurve so the farm allocator prices exactly the state the next
// pass would schedule from.
func (c *Coordinator) buildInputs() ([]ProcRef, []ProcInput) {
	procs := c.procs()
	inputs := make([]ProcInput, len(procs))
	for i, p := range procs {
		n := c.nodes[p.Node]
		in := ProcInput{Proc: p, Node: n.Name}
		if c.cfg.UseIdleSignal && n.M.IsIdle(p.CPU) {
			in.Idle = true
		} else if o, ok := c.observation(p); ok {
			o := o
			in.Obs = &o
		}
		inputs[i] = in
	}
	return procs, inputs
}

// DemandCurve exports the cluster's current budget→predicted-loss curve
// for the farm allocator, priced from the same stale observations the
// next scheduling pass would use.
func (c *Coordinator) DemandCurve() (farm.DemandCurve, error) {
	_, inputs := c.buildInputs()
	return c.core.DemandCurve(inputs)
}

// UniformLoss predicts the aggregate loss of pinning every processor at
// the given table index — the uniform-slowdown baseline.
func (c *Coordinator) UniformLoss(fi int) (float64, error) {
	_, inputs := c.buildInputs()
	return c.core.UniformLoss(inputs, fi)
}

// FloorPower returns the aggregate table power with every processor at
// the minimum setting — the cluster's farm lease floor.
func (c *Coordinator) FloorPower() units.Power {
	var sum units.Power
	for _, n := range c.nodes {
		for cpu := 0; cpu < n.M.NumCPUs(); cpu++ {
			sum += c.cfg.Table.PowerAtIndex(0)
		}
	}
	return sum
}

// schedule runs the shared global pass and dispatches RTT-delayed
// actuations.
func (c *Coordinator) schedule(trigger string) error {
	c.passID++
	trace := c.sink != nil
	var passStart time.Time
	if trace {
		passStart = time.Now()
	}
	procs, inputs := c.buildInputs()
	res, err := c.core.Schedule(inputs, c.budget)
	if err != nil {
		return err
	}
	var actStart time.Time
	if trace {
		actStart = time.Now()
	}
	for i, p := range procs {
		n := c.nodes[p.Node]
		c.pending = append(c.pending, pendingActuation{
			due:  c.loop.Now() + n.RTT,
			proc: p,
			f:    res.Assignments[i].Actual,
			m:    n.M,
		})
	}
	var actDur time.Duration
	if trace {
		actDur = time.Since(actStart)
	}
	c.decisions = append(c.decisions, Decision{
		At:          c.loop.Now(),
		Trigger:     trigger,
		Budget:      c.budget,
		TablePower:  res.TablePower,
		BudgetMet:   res.BudgetMet,
		Assignments: res.Assignments,
	})
	if trace {
		now := c.loop.Now()
		ev := PassEvent(now, trigger, c.budget, inputs, res)
		ev.PassID = c.passID
		c.sink.Emit(ev)
		EmitStepSpans(c.sink, now, c.passID, res.Timings)
		c.sink.Emit(obs.SpanEvent(now, c.passID, "", obs.SpanActuate, obs.SpanPass, actDur.Seconds()))
		c.sink.Emit(obs.SpanEvent(now, c.passID, "", obs.SpanPass, "", time.Since(passStart).Seconds()))
	}
	return nil
}

// LastDecision returns the most recent global pass, if any ran. The
// assignments slice is shared with the log — callers must not mutate it.
func (c *Coordinator) LastDecision() (Decision, bool) {
	if len(c.decisions) == 0 {
		return Decision{}, false
	}
	return c.decisions[len(c.decisions)-1], true
}

// Decisions returns the coordinator's decision log.
func (c *Coordinator) Decisions() []Decision {
	out := make([]Decision, len(c.decisions))
	copy(out, c.decisions)
	return out
}

// Run advances the cluster until simulation time t.
func (c *Coordinator) Run(until float64) error {
	for c.loop.Now() < until {
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// AllJobsDone reports whether every node's workload completed.
func (c *Coordinator) AllJobsDone() bool {
	for _, n := range c.nodes {
		if !n.M.AllJobsDone() {
			return false
		}
	}
	return true
}

// RunUntilAllDone advances until all workloads finish or the deadline
// passes.
func (c *Coordinator) RunUntilAllDone(deadline float64) (bool, error) {
	for c.loop.Now() < deadline {
		if c.AllJobsDone() {
			return true, nil
		}
		if err := c.Step(); err != nil {
			return false, err
		}
	}
	return c.AllJobsDone(), nil
}

// Completions gathers job completions across all nodes, sorted by time.
type Completion struct {
	Node    string
	CPU     int
	Program string
	At      float64
}

// Completions returns all completions across the cluster in time order.
func (c *Coordinator) Completions() []Completion {
	var out []Completion
	for _, n := range c.nodes {
		for _, jc := range n.M.Completions() {
			out = append(out, Completion{Node: n.Name, CPU: jc.CPU, Program: jc.Program, At: jc.At})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// TierSpec describes one tier of a classic three-tier deployment.
type TierSpec struct {
	Name string
	// Programs are assigned round-robin to the node's CPUs.
	Programs []workload.Program
	RTT      float64
}

// NewTieredNode builds a node from a machine config and tier spec.
func NewTieredNode(mcfg machine.Config, tier TierSpec) (*Node, error) {
	mcfg.Name = tier.Name
	m, err := machine.New(mcfg)
	if err != nil {
		return nil, err
	}
	for i, prog := range tier.Programs {
		cpu := i % mcfg.NumCPUs
		existing := m.Mix(cpu)
		if existing != nil {
			// Merge into a fresh mix with the previous programs. Mixes are
			// cheap; rebuild from the tier's program list for this CPU.
			var progs []workload.Program
			for _, j := range existing.Jobs() {
				progs = append(progs, j.Program())
			}
			progs = append(progs, prog)
			mix, err := workload.NewMix(progs...)
			if err != nil {
				return nil, err
			}
			if err := m.SetMix(cpu, mix); err != nil {
				return nil, err
			}
			continue
		}
		mix, err := workload.NewMix(prog)
		if err != nil {
			return nil, err
		}
		if err := m.SetMix(cpu, mix); err != nil {
			return nil, err
		}
	}
	return &Node{Name: tier.Name, M: m, RTT: tier.RTT}, nil
}

// Tiered builds the paper's motivating cluster shape (§4.2: "some machines
// run the web server, some the processing logic and some the database"):
// a web node with light CPU work and idle capacity, an app node with
// CPU-bound work, and a db node with memory-bound work. scale trades run
// length for harness time.
func Tiered(mcfg machine.Config, scale workload.AppScale) ([]*Node, error) {
	web := TierSpec{Name: "web", RTT: 0.002, Programs: []workload.Program{
		workload.Gzip(scale), // static-content compression
	}}
	app := TierSpec{Name: "app", RTT: 0.002, Programs: []workload.Program{
		workload.Gap(scale), workload.Gzip(scale), workload.Gap(scale), workload.Gap(scale),
	}}
	db := TierSpec{Name: "db", RTT: 0.002, Programs: []workload.Program{
		workload.Mcf(scale), workload.Health(scale), workload.Mcf(scale), workload.Health(scale),
	}}
	var nodes []*Node
	for _, tier := range []TierSpec{web, app, db} {
		n, err := NewTieredNode(mcfg, tier)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}
