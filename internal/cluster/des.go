// Discrete-event advancement for the cluster coordinator. RunDES is
// byte-identical to Run — same decisions, counters, energy, trace — but
// instead of paying full coordinator overhead every 10 ms quantum it
// classifies each upcoming quantum as interesting (a schedule edge, a
// budget edge, a pending actuation, a waker's next event) or quiet, and
// fast-forwards machines through quiet spans on their probe-and-replay
// path while samplers keep collecting per-quantum windows.
package cluster

import (
	"math"

	"repro/internal/farm"
	"repro/internal/units"
)

// Waker bounds DES skipping for a per-quantum hook participant (a serving
// station's feeder, a fault injector): NextWakeAt returns the earliest
// future time the participant needs a real coordinator Step, +Inf when it
// never does again, or a time ≤ now when it cannot bound one (which
// disables skipping). Implementations must be conservative — waking too
// early costs a quantum, waking late changes the simulation.
type Waker interface {
	NextWakeAt(now float64) float64
}

// QuantaSkipper is the optional Waker extension for participants that
// keep their own per-quantum counters (a station's emit cadence): they
// are told how many quanta a skip covered so the counters stay aligned.
type QuantaSkipper interface {
	SkipQuanta(n int)
}

// AddWaker registers a skip bound. With quantum hooks installed but no
// wakers, RunDES never skips — hooks see every quantum either way.
func (c *Coordinator) AddWaker(w Waker) { c.wakers = append(c.wakers, w) }

// budgetWant returns the budget the next Step would see in force.
func (c *Coordinator) budgetWant() units.Power {
	switch {
	case c.source != nil:
		return c.source.BudgetAt(c.loop.Now())
	case c.Budgets != nil:
		return c.Budgets.At(c.loop.Now())
	}
	return c.budget
}

// quietSpan returns how many upcoming quanta need no coordinator work —
// no trace emission, no budget change, no actuation landing, no schedule
// pass, no waker event — and may therefore be skipped. 0 means the next
// quantum must be a real Step.
func (c *Coordinator) quietSpan(until float64) int {
	if c.sink != nil {
		// Tracing observes every quantum; nothing is quiet.
		return 0
	}
	if (c.beforeQuantum != nil || c.afterQuantum != nil) && len(c.wakers) == 0 {
		// Hooks without wakers could need any quantum.
		return 0
	}
	if c.budgetWant() != c.budget {
		return 0
	}
	now := c.loop.Now()
	q := c.loop.Quantum()
	// Never skip across the schedule timer's due edge.
	n := c.loop.TicksUntilDue() - 1
	// bound clips the span so every skipped quantum *starts* before t.
	bound := func(t float64) {
		if math.IsInf(t, 1) {
			return
		}
		if k := int((t - now) / q); k < n {
			n = k
		}
	}
	bound(until)
	// Budget edges: a source that cannot announce them disables skipping.
	switch {
	case c.source != nil:
		es, ok := c.source.(farm.EdgeSource)
		if !ok {
			return 0
		}
		t := es.NextChangeAt(now)
		if t <= now {
			return 0
		}
		bound(t)
	case c.Budgets != nil:
		bound(c.Budgets.NextChangeAt(now))
	}
	for _, p := range c.pending {
		bound(p.due)
	}
	for _, w := range c.wakers {
		t := w.NextWakeAt(now)
		if t <= now {
			return 0
		}
		bound(t)
	}
	if n < 0 {
		return 0
	}
	return n
}

// skipSpan advances every machine n quanta (samplers still collect every
// quantum) and moves the loop clock without running coordinator work.
func (c *Coordinator) skipSpan(n int) error {
	for _, nd := range c.nodes {
		if c.homogeneous {
			if err := nd.M.FastForwardQuanta(n, nd.sampler.Collect); err != nil {
				return err
			}
			continue
		}
		// Heterogeneous machines advance to each cadence edge in turn,
		// accumulating the target exactly as the stepped loop clock would.
		t := c.loop.Now()
		q := c.loop.Quantum()
		for j := 0; j < n; j++ {
			t += q
			if err := nd.M.AdvanceTo(t); err != nil {
				return err
			}
			if err := nd.sampler.Collect(); err != nil {
				return err
			}
		}
	}
	if err := c.loop.SkipTicks(n); err != nil {
		return err
	}
	for _, w := range c.wakers {
		if s, ok := w.(QuantaSkipper); ok {
			s.SkipQuanta(n)
		}
	}
	return nil
}

// RunDES advances the cluster until simulation time t on the event
// timeline: real Steps at every interesting quantum, bulk fast-forwards
// through quiet spans. The result is byte-identical to Run(until) — the
// differential harness pins it — so callers may pick either purely on
// wall-clock cost.
func (c *Coordinator) RunDES(until float64) error {
	for c.loop.Now() < until {
		if n := c.quietSpan(until); n > 0 {
			if err := c.skipSpan(n); err != nil {
				return err
			}
			continue
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}
