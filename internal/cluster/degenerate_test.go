package cluster

import (
	"math"
	"testing"

	"repro/internal/counters"
	"repro/internal/fvsst"
	"repro/internal/memhier"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// TestEmptyTableRejected pins the constructor contract the degenerate
// paths below rely on: a table with no operating points cannot exist, so
// schedulers never need a "zero frequencies" branch.
func TestEmptyTableRejected(t *testing.T) {
	if _, err := power.NewTable(nil); err == nil {
		t.Fatal("empty operating-point table accepted")
	}
	if _, err := power.NewTable([]power.OperatingPoint{}); err == nil {
		t.Fatal("zero-length operating-point table accepted")
	}
}

func singlePointCore(t *testing.T) *Core {
	t.Helper()
	table, err := power.NewTable([]power.OperatingPoint{
		{F: units.MHz(1000), V: units.Volts(1.2), P: units.Watts(40)},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fvsst.DefaultConfig()
	cfg.Table = table
	cfg.Hier = memhier.P630()
	cfg.UseIdleSignal = true
	core, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return core
}

func singlePointObs() *perfmodel.Observation {
	return &perfmodel.Observation{
		Delta: counters.Delta{
			Window:       0.02,
			Instructions: 2_000_000,
			Cycles:       3_000_000,
			L2Refs:       40_000,
			L3Refs:       8_000,
			MemRefs:      3_000,
		},
		Freq: units.MHz(1000),
	}
}

// TestSingleFrequencyTable drives Schedule, UniformLoss and DemandCurve
// over a one-point table: with nowhere to move, every CPU sits at the
// sole frequency, predicted loss is exactly zero (f == f_max), and no
// path divides by a zero frequency range.
func TestSingleFrequencyTable(t *testing.T) {
	core := singlePointCore(t)
	inputs := []ProcInput{
		{Proc: ProcRef{CPU: 0}, Obs: singlePointObs()},
		{Proc: ProcRef{CPU: 1}, Idle: true},
		{Proc: ProcRef{CPU: 2}}, // no counters
	}

	res, err := core.Schedule(inputs, units.Watts(1000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetMet || len(res.Demotions) != 0 {
		t.Fatalf("single-point pass: met=%v demotions=%d", res.BudgetMet, len(res.Demotions))
	}
	for _, a := range res.Assignments {
		if a.Actual != units.MHz(1000) || a.Desired != units.MHz(1000) {
			t.Fatalf("cpu%d assigned %v/%v, want the only point", a.Proc.CPU, a.Desired, a.Actual)
		}
		if math.IsNaN(a.PredictedLoss) || a.PredictedLoss != 0 {
			t.Fatalf("cpu%d predicted loss %v at f_max, want exactly 0", a.Proc.CPU, a.PredictedLoss)
		}
	}

	loss, err := core.UniformLoss(inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loss != 0 || math.IsNaN(loss) {
		t.Fatalf("UniformLoss at the only point = %v, want 0", loss)
	}
	if _, err := core.UniformLoss(inputs, 1); err == nil {
		t.Fatal("UniformLoss accepted an index outside the one-point table")
	}
	if _, err := core.UniformLoss(inputs, -1); err == nil {
		t.Fatal("UniformLoss accepted a negative index")
	}

	curve, err := core.DemandCurve(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 1 {
		t.Fatalf("one-point table yields %d demand points, want 1", len(curve.Points))
	}
	p := curve.Points[0]
	if p.Power != units.Watts(120) || p.Loss != 0 || math.IsNaN(p.Loss) {
		t.Fatalf("demand point %+v, want 120W at zero loss", p)
	}
}

// TestSingleFrequencyInfeasibleBudget pins the met=false shape when even
// the floor cannot fit: nothing to demote, every CPU stays at the sole
// point, and the charge is reported honestly.
func TestSingleFrequencyInfeasibleBudget(t *testing.T) {
	core := singlePointCore(t)
	inputs := []ProcInput{{Proc: ProcRef{CPU: 0}, Obs: singlePointObs()}}
	res, err := core.Schedule(inputs, units.Watts(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetMet {
		t.Fatal("met=true with 40W floor against a 10W budget")
	}
	if len(res.Demotions) != 0 {
		t.Fatalf("demoted %d times with nowhere to go", len(res.Demotions))
	}
	if res.TablePower != units.Watts(40) {
		t.Fatalf("table power %v, want the honest 40W", res.TablePower)
	}
}

// TestEmptyInputs pins the zero-CPU behaviors: Schedule trivially meets
// any budget with an empty assignment, UniformLoss sums to zero, and
// DemandCurve refuses (a curve with no consumers is meaningless to the
// farm allocator).
func TestEmptyInputs(t *testing.T) {
	core := singlePointCore(t)
	res, err := core.Schedule(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetMet || len(res.Assignments) != 0 || res.TablePower != 0 {
		t.Fatalf("empty schedule: %+v", res)
	}
	loss, err := core.UniformLoss(nil, 0)
	if err != nil || loss != 0 {
		t.Fatalf("UniformLoss(nil) = %v, %v", loss, err)
	}
	if _, err := core.DemandCurve(nil); err == nil {
		t.Fatal("DemandCurve accepted zero processors")
	}
}
