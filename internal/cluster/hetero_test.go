package cluster

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestHeterogeneousNodeSizes checks the coordinator handles nodes with
// different processor counts — a 2-way and a 4-way box in one cluster —
// flattening them into a single global schedule.
func TestHeterogeneousNodeSizes(t *testing.T) {
	mk := func(name string, cpus int, seed int64) *Node {
		cfg := quietMachineConfig()
		cfg.NumCPUs = cpus
		cfg.Seed = seed
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mix, err := workload.NewMix(memProg(1e12))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetMix(0, mix); err != nil {
			t.Fatal(err)
		}
		return &Node{Name: name, M: m, RTT: 0.002}
	}
	c, err := New(clusterConfig(), units.Watts(400), mk("small", 2, 1), mk("big", 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0.8); err != nil {
		t.Fatal(err)
	}
	decs := c.Decisions()
	if len(decs) == 0 {
		t.Fatal("no decisions")
	}
	last := decs[len(decs)-1]
	if len(last.Assignments) != 6 {
		t.Fatalf("assignments = %d, want 6 (2+4)", len(last.Assignments))
	}
	if last.TablePower > units.Watts(400) {
		t.Errorf("table power %v over global budget", last.TablePower)
	}
	// The two memory-bound busy CPUs (cpu0 of each node) end in the
	// saturation band; all idle CPUs are at the floor.
	for _, a := range last.Assignments {
		if a.Proc.CPU == 0 {
			if a.Actual < units.MHz(600) || a.Actual > units.MHz(750) {
				t.Errorf("node %d busy CPU at %v", a.Proc.Node, a.Actual)
			}
		} else if a.Actual != units.MHz(250) {
			t.Errorf("node %d idle CPU %d at %v, want floor", a.Proc.Node, a.Proc.CPU, a.Actual)
		}
	}
}

// TestZeroRTTNode exercises the degenerate local-node case: with RTT 0 the
// coordinator behaves like a local scheduler (no staleness, immediate
// actuation).
func TestZeroRTTNode(t *testing.T) {
	cfg := quietMachineConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := workload.NewMix(memProg(1e12))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMix(0, mix); err != nil {
		t.Fatal(err)
	}
	c, err := New(clusterConfig(), units.Watts(560), &Node{Name: "local", M: m, RTT: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0.8); err != nil {
		t.Fatal(err)
	}
	f := m.EffectiveFrequency(0)
	if f > units.MHz(700) || f < units.MHz(600) {
		t.Errorf("zero-RTT node scheduled at %v, want ≈650MHz", f)
	}
}

// TestLargerClusterScales runs eight nodes (32 processors) under one
// budget and checks the schedule remains globally consistent.
func TestLargerClusterScales(t *testing.T) {
	var nodes []*Node
	for i := 0; i < 8; i++ {
		cfg := quietMachineConfig()
		cfg.Seed = int64(i + 1)
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		prog := memProg(1e12)
		if i%2 == 0 {
			prog = cpuProg(1e12)
		}
		mix, err := workload.NewMix(prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetMix(0, mix); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &Node{Name: string(rune('a' + i)), M: m, RTT: 0.003})
	}
	// 32 CPUs; busy ones are 8. Budget forces real choices: floor for the
	// 24 idle (24×9=216W) + meaningful splits for the busy ones.
	c, err := New(clusterConfig(), units.Watts(900), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1.0); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalCPUPower(); got > units.Watts(910) {
		t.Errorf("cluster power %v over budget", got)
	}
	decs := c.Decisions()
	last := decs[len(decs)-1]
	if len(last.Assignments) != 32 {
		t.Fatalf("assignments = %d", len(last.Assignments))
	}
	// CPU-bound nodes keep more frequency than memory-bound ones.
	var cpuSum, memSum float64
	for _, a := range last.Assignments {
		if a.Proc.CPU != 0 {
			continue
		}
		if a.Proc.Node%2 == 0 {
			cpuSum += a.Actual.MHz()
		} else {
			memSum += a.Actual.MHz()
		}
	}
	if cpuSum <= memSum {
		t.Errorf("diversity not exploited at scale: cpu tiers %.0f ≤ mem tiers %.0f", cpuSum, memSum)
	}
}
