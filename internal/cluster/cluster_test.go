package cluster

import (
	"testing"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

func quietMachineConfig() machine.Config {
	cfg := machine.P630Config()
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	return cfg
}

func clusterConfig() fvsst.Config {
	cfg := fvsst.DefaultConfig()
	cfg.Overhead = fvsst.Overhead{}
	cfg.UseIdleSignal = true
	return cfg
}

func memProg(instr uint64) workload.Program {
	return workload.Program{Name: "mem", Phases: []workload.Phase{{
		Name: "m", Alpha: 1.1,
		Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.0186},
		Instructions: instr,
	}}}
}

func cpuProg(instr uint64) workload.Program {
	return workload.Program{Name: "cpu", Phases: []workload.Phase{{
		Name: "c", Alpha: 1.4, Instructions: instr,
	}}}
}

func newTwoNodeCluster(t *testing.T, budget units.Power) *Coordinator {
	t.Helper()
	mkNode := func(name string, prog workload.Program, seed int64) *Node {
		mcfg := quietMachineConfig()
		mcfg.Seed = seed
		m, err := machine.New(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		mix, err := workload.NewMix(prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetMix(0, mix); err != nil {
			t.Fatal(err)
		}
		return &Node{Name: name, M: m, RTT: 0.005}
	}
	c, err := New(clusterConfig(), budget,
		mkNode("app", cpuProg(1e12), 1),
		mkNode("db", memProg(1e12), 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cfg := clusterConfig()
	if _, err := New(cfg, units.Watts(100)); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := New(cfg, 0, &Node{}); err == nil {
		t.Error("zero budget accepted")
	}
	m, _ := machine.New(quietMachineConfig())
	if _, err := New(cfg, units.Watts(100), &Node{Name: "", M: m}); err == nil {
		t.Error("unnamed node accepted")
	}
	if _, err := New(cfg, units.Watts(100), &Node{Name: "x", M: nil}); err == nil {
		t.Error("machine-less node accepted")
	}
	if _, err := New(cfg, units.Watts(100), &Node{Name: "x", M: m, RTT: -1}); err == nil {
		t.Error("negative RTT accepted")
	}
	// Mismatched quanta are allowed: the cadence follows the first node
	// and the others advance to its edges (see TestHeterogeneousQuanta).
	mcfg := quietMachineConfig()
	mcfg.Quantum = 0.005
	m2, _ := machine.New(mcfg)
	c, err := New(cfg, units.Watts(100),
		&Node{Name: "a", M: m}, &Node{Name: "b", M: m2})
	if err != nil {
		t.Errorf("mismatched quanta rejected: %v", err)
	} else if c.loop.Quantum() != quietMachineConfig().Quantum {
		t.Errorf("cadence quantum %v, want the first node's %v", c.loop.Quantum(), quietMachineConfig().Quantum)
	}
}

func TestGlobalBudgetEnforcedAcrossNodes(t *testing.T) {
	// Two 4-CPU nodes, global budget 600 W (< 2×560 W unconstrained).
	c := newTwoNodeCluster(t, units.Watts(600))
	if err := c.Run(1.0); err != nil {
		t.Fatal(err)
	}
	decs := c.Decisions()
	if len(decs) == 0 {
		t.Fatal("no decisions")
	}
	last := decs[len(decs)-1]
	if !last.BudgetMet {
		t.Error("600W across 8 CPUs should be feasible")
	}
	if last.TablePower > units.Watts(600) {
		t.Errorf("table power %v over budget", last.TablePower)
	}
	if got := c.TotalCPUPower(); got > units.Watts(610) {
		t.Errorf("actual cluster CPU power %v over budget", got)
	}
	if len(last.Assignments) != 8 {
		t.Errorf("assignments = %d, want 8", len(last.Assignments))
	}
}

func TestWorkloadDiversityExploited(t *testing.T) {
	// Under a tight budget the memory-bound db node should be throttled
	// deeper than the CPU-bound app node — the paper's central cluster
	// claim (§4.2).
	c := newTwoNodeCluster(t, units.Watts(500))
	if err := c.Run(1.0); err != nil {
		t.Fatal(err)
	}
	decs := c.Decisions()
	last := decs[len(decs)-1]
	var appF, dbF units.Frequency
	for _, a := range last.Assignments {
		if a.Proc.CPU != 0 {
			continue
		}
		if a.Proc.Node == 0 {
			appF = a.Actual
		} else {
			dbF = a.Actual
		}
	}
	if dbF >= appF {
		t.Errorf("db CPU at %v not below app CPU at %v", dbF, appF)
	}
}

func TestActuationDelayedByRTT(t *testing.T) {
	c := newTwoNodeCluster(t, units.Watts(600))
	// After the very first schedule pass, actuations are pending for RTT.
	// Run one scheduling period plus a hair.
	quanta := clusterConfig().SchedulePeriods
	for i := 0; i < quanta; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.pending) == 0 {
		t.Fatal("no pending actuations right after a schedule pass")
	}
	// Within the RTT the idle CPUs are still at nominal.
	n := c.Nodes()[0]
	if f := n.M.EffectiveFrequency(1); f != units.GHz(1) {
		t.Errorf("actuation landed before RTT: cpu1 at %v", f)
	}
	// After the RTT it lands (idle CPU → table minimum).
	for i := 0; i < 2; i++ { // 2 quanta = 20 ms > 5 ms RTT
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if f := n.M.EffectiveFrequency(1); f >= units.GHz(1) {
		t.Errorf("idle CPU still at %v after RTT", f)
	}
}

func TestBudgetScheduleTriggersGlobalReschedule(t *testing.T) {
	c := newTwoNodeCluster(t, units.Watts(1120))
	sched, err := power.NewBudgetSchedule(units.Watts(1120),
		power.BudgetEvent{At: 0.3, Budget: units.Watts(500), Label: "site cap"})
	if err != nil {
		t.Fatal(err)
	}
	c.Budgets = sched
	if err := c.Run(0.8); err != nil {
		t.Fatal(err)
	}
	var sawChange bool
	for _, d := range c.Decisions() {
		if d.Trigger == "budget-change" {
			sawChange = true
			if d.Budget.W() != 500 {
				t.Errorf("budget-change decision budget = %v", d.Budget)
			}
		}
	}
	if !sawChange {
		t.Error("no budget-change decision")
	}
	if got := c.TotalCPUPower(); got > units.Watts(510) {
		t.Errorf("cluster power %v after cap", got)
	}
}

func TestCompletionsAcrossNodes(t *testing.T) {
	mkNode := func(name string, seed int64) *Node {
		mcfg := quietMachineConfig()
		mcfg.Seed = seed
		m, _ := machine.New(mcfg)
		mix, _ := workload.NewMix(cpuProg(5e8))
		m.SetMix(0, mix)
		return &Node{Name: name, M: m, RTT: 0.001}
	}
	c, err := New(clusterConfig(), units.Watts(1120), mkNode("a", 1), mkNode("b", 2))
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.RunUntilAllDone(10)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("jobs did not finish")
	}
	comps := c.Completions()
	if len(comps) != 2 {
		t.Fatalf("completions = %+v", comps)
	}
	names := map[string]bool{}
	for _, comp := range comps {
		names[comp.Node] = true
	}
	if !names["a"] || !names["b"] {
		t.Errorf("missing node in completions: %+v", comps)
	}
}

func TestTieredClusterConstruction(t *testing.T) {
	nodes, err := Tiered(quietMachineConfig(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("tiers = %d", len(nodes))
	}
	wantNames := []string{"web", "app", "db"}
	for i, n := range nodes {
		if n.Name != wantNames[i] {
			t.Errorf("tier %d = %s", i, n.Name)
		}
	}
	// The db node must carry memory-bound work on every populated CPU.
	db := nodes[2]
	populated := 0
	for cpu := 0; cpu < db.M.NumCPUs(); cpu++ {
		if db.M.Mix(cpu) != nil {
			populated++
		}
	}
	if populated != 4 {
		t.Errorf("db node has %d populated CPUs, want 4", populated)
	}
	// And the cluster runs end to end under a global cap.
	c, err := New(clusterConfig(), units.Watts(900), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0.5); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalCPUPower(); got > units.Watts(910) {
		t.Errorf("tiered cluster power %v over cap", got)
	}
}

func TestQuantumHookBracketsStepping(t *testing.T) {
	c := newTwoNodeCluster(t, 400)
	var log []string
	c.SetQuantumHook(
		func(now float64) { log = append(log, "before") },
		func(now float64) { log = append(log, "after") },
	)
	for i := 0; i < 3; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(log) != 6 {
		t.Fatalf("hook calls = %d, want 6", len(log))
	}
	for i := 0; i < len(log); i += 2 {
		if log[i] != "before" || log[i+1] != "after" {
			t.Fatalf("hook order wrong at %d: %v", i, log)
		}
	}
	// Nil hooks are allowed (and the default).
	c.SetQuantumHook(nil, nil)
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
}
