// Package perfmodel implements the paper's predictive performance model
// (§4.3): from one window of performance-counter data it decomposes a
// processor's cycles into a frequency-dependent core component (1/α) and a
// frequency-independent memory component (Σ Nᵢ·Tᵢ), and from that predicts
// IPC and performance at any candidate frequency:
//
//	IPC(f) = 1 / (1/α + (Σᵢ (Nᵢ/Instr)·Tᵢ) · f)
//	Perf(f) = IPC(f) · f
//
// The package also provides the paper's PerfLoss metric, the closed-form
// ideal frequency of §5, the two-frequency calibration mentioned in the
// §4.3 footnote, and the best/worst-case latency bounds of reference [17].
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/counters"
	"repro/internal/memhier"
	"repro/internal/units"
)

// MaxAlpha bounds the perfect-machine IPC: no Power4-class core retires
// more than ~8 instructions per cycle, and a noisy observation that implies
// a higher α is clamped rather than trusted.
const MaxAlpha = 8.0

// Observation is one window of counter data together with the effective
// frequency the processor ran at during the window — everything the
// predictor is allowed to see.
type Observation struct {
	Delta counters.Delta
	Freq  units.Frequency
}

// Validate checks the observation is usable for prediction.
func (o Observation) Validate() error {
	if o.Freq <= 0 {
		return fmt.Errorf("perfmodel: observation frequency %v must be positive", o.Freq)
	}
	if o.Delta.Instructions == 0 || o.Delta.Cycles == 0 {
		return fmt.Errorf("perfmodel: observation has no retired work")
	}
	return o.Delta.Validate()
}

// Decomposition is the frequency-dependent/independent split of a
// workload's per-instruction cost.
type Decomposition struct {
	// InvAlpha is 1/α: core cycles per instruction on a perfect memory
	// system.
	InvAlpha float64
	// StallSecPerInstr is Σᵢ rᵢ·Tᵢ: seconds per instruction spent in the
	// memory system, invariant under frequency scaling.
	StallSecPerInstr float64
}

// Predictor holds the machine constants the model needs: the memory
// hierarchy (for the Tᵢ service times).
type Predictor struct {
	Hier memhier.Hierarchy
}

// New returns a predictor over the given hierarchy.
func New(h memhier.Hierarchy) (Predictor, error) {
	if err := h.Validate(); err != nil {
		return Predictor{}, err
	}
	return Predictor{Hier: h}, nil
}

// Decompose derives the cycle decomposition from a single observation: the
// memory term comes from the counter-reported access counts and the
// constant service times; the core term is whatever is left of the observed
// cycles-per-instruction after subtracting the memory cycles at the
// observed frequency. A noisy window whose memory term already exceeds the
// observed CPI clamps InvAlpha at 1/MaxAlpha.
func (p Predictor) Decompose(o Observation) (Decomposition, error) {
	if err := o.Validate(); err != nil {
		return Decomposition{}, err
	}
	d := o.Delta
	rates := memhier.AccessRates{
		L2PerInstr:  d.L2PerInstr(),
		L3PerInstr:  d.L3PerInstr(),
		MemPerInstr: d.MemPerInstr(),
	}
	stall := rates.StallTimePerInstr(p.Hier)
	cpi := 1 / d.IPC()
	invAlpha := cpi - stall*o.Freq.Hz()
	if invAlpha < 1/MaxAlpha {
		invAlpha = 1 / MaxAlpha
	}
	return Decomposition{InvAlpha: invAlpha, StallSecPerInstr: stall}, nil
}

// FromPhaseTruth builds the decomposition the predictor *would* recover
// from a perfectly measured phase — useful for analytic experiments and the
// saturation study of Figure 1. alpha is the phase's perfect-machine IPC
// and stall the Σ r·T term.
func FromPhaseTruth(alpha, stallSecPerInstr float64) (Decomposition, error) {
	if alpha <= 0 || alpha > MaxAlpha {
		return Decomposition{}, fmt.Errorf("perfmodel: alpha %v out of (0,%v]", alpha, MaxAlpha)
	}
	if stallSecPerInstr < 0 {
		return Decomposition{}, fmt.Errorf("perfmodel: negative stall %v", stallSecPerInstr)
	}
	return Decomposition{InvAlpha: 1 / alpha, StallSecPerInstr: stallSecPerInstr}, nil
}

// IPCAt predicts instructions per cycle at frequency f.
func (d Decomposition) IPCAt(f units.Frequency) float64 {
	return 1 / (d.InvAlpha + d.StallSecPerInstr*f.Hz())
}

// PerfAt predicts performance — the instruction completion rate in
// instructions per second — at frequency f: Perf(f) = IPC(f)·f.
func (d Decomposition) PerfAt(f units.Frequency) float64 {
	return d.IPCAt(f) * f.Hz()
}

// PerfLoss returns the predicted fraction of performance lost by running at
// target f instead of reference g: (Perf(g) - Perf(f)) / Perf(g). Positive
// values are losses, negative values gains. The scheduler's ε-criterion is
// PerfLoss(f_max → f) < ε.
func (d Decomposition) PerfLoss(g, f units.Frequency) float64 {
	pg := d.PerfAt(g)
	if pg == 0 {
		return 0
	}
	return (pg - d.PerfAt(f)) / pg
}

// SaturationPerf returns the performance bound as f → ∞: 1/StallSecPerInstr
// instructions per second, or +Inf for a pure-CPU workload.
func (d Decomposition) SaturationPerf() float64 {
	if d.StallSecPerInstr == 0 {
		return math.Inf(1)
	}
	return 1 / d.StallSecPerInstr
}

// IdealFrequency computes the §5 closed form: the continuous frequency at
// which the workload retains (1-ε) of its performance at fMax. CPU-bound
// windows (predicted IPC at fMax above the ipcCutoff of 1, per the paper's
// "fideal = fmax if IPC > 1") return fMax directly, as do workloads whose
// saturation performance cannot support the target.
func (d Decomposition) IdealFrequency(fMax units.Frequency, epsilon float64) (units.Frequency, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return 0, fmt.Errorf("perfmodel: epsilon %v out of (0,1)", epsilon)
	}
	if fMax <= 0 {
		return 0, fmt.Errorf("perfmodel: fMax %v must be positive", fMax)
	}
	if d.IPCAt(fMax) > 1 {
		return fMax, nil
	}
	target := d.PerfAt(fMax) * (1 - epsilon)
	denom := 1 - d.StallSecPerInstr*target
	if denom <= 0 {
		return fMax, nil
	}
	f := units.Frequency(d.InvAlpha * target / denom)
	if f > fMax {
		f = fMax
	}
	return f, nil
}

// CalibrateTwoPoint recovers a decomposition from observations of the same
// workload at two different frequencies, the approach of [2] referenced in
// the §4.3 footnote: it needs no assumed service times, since two
// (frequency, CPI) points determine both components:
//
//	CPI(f) = InvAlpha + Stall·f.
func CalibrateTwoPoint(a, b Observation) (Decomposition, error) {
	if err := a.Validate(); err != nil {
		return Decomposition{}, err
	}
	if err := b.Validate(); err != nil {
		return Decomposition{}, err
	}
	if a.Freq == b.Freq {
		return Decomposition{}, fmt.Errorf("perfmodel: two-point calibration needs distinct frequencies")
	}
	cpiA, cpiB := 1/a.Delta.IPC(), 1/b.Delta.IPC()
	stall := (cpiB - cpiA) / (b.Freq.Hz() - a.Freq.Hz())
	if stall < 0 {
		stall = 0
	}
	invAlpha := cpiA - stall*a.Freq.Hz()
	if invAlpha < 1/MaxAlpha {
		invAlpha = 1 / MaxAlpha
	}
	return Decomposition{InvAlpha: invAlpha, StallSecPerInstr: stall}, nil
}

// Bounds is the best/worst-case prediction interval of reference [17]:
// instead of one constant latency per level, the true service time is
// bracketed between scale factors applied to the nominal latencies.
type Bounds struct {
	Best, Worst Decomposition
}

// DecomposeWithBounds is Decompose with a latency uncertainty band:
// loScale and hiScale multiply the nominal service times (e.g. 0.9 and 1.3
// for −10%/+30% latency uncertainty).
func (p Predictor) DecomposeWithBounds(o Observation, loScale, hiScale float64) (Bounds, error) {
	if loScale <= 0 || hiScale < loScale {
		return Bounds{}, fmt.Errorf("perfmodel: bad latency scales %v..%v", loScale, hiScale)
	}
	base, err := p.Decompose(o)
	if err != nil {
		return Bounds{}, err
	}
	mk := func(scale float64) Decomposition {
		stall := base.StallSecPerInstr * scale
		cpi := base.InvAlpha + base.StallSecPerInstr*o.Freq.Hz() // observed CPI reconstructed
		invAlpha := cpi - stall*o.Freq.Hz()
		if invAlpha < 1/MaxAlpha {
			invAlpha = 1 / MaxAlpha
		}
		return Decomposition{InvAlpha: invAlpha, StallSecPerInstr: stall}
	}
	// A larger assumed latency shifts cost from the core to the memory
	// component; at lower frequencies that predicts *better* performance
	// retention ("best case" for scaling down), and vice versa.
	return Bounds{Best: mk(hiScale), Worst: mk(loScale)}, nil
}

// IPCRangeAt returns the predicted IPC interval at frequency f.
func (b Bounds) IPCRangeAt(f units.Frequency) (lo, hi float64) {
	x, y := b.Best.IPCAt(f), b.Worst.IPCAt(f)
	if x > y {
		x, y = y, x
	}
	return x, y
}
