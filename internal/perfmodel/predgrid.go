package perfmodel

import (
	"repro/internal/units"
)

// PredGrid is a reusable per-scheduler scratch holding, for every CPU and
// every frequency of the operating-point set, the predicted IPC and the
// predicted performance loss versus the set maximum. The scheduling pass
// fills each busy CPU's row exactly once (Fill) and Step-1's ε-search,
// Step-2's greedy demotions and the decision attribution all read from it
// — before the grid each of those recomputed IPC(f)/PerfLoss per use.
//
// Ownership rule (see docs/engine.md): the grid belongs to one scheduler
// and is valid for the duration of one scheduling pass; Reset begins a
// pass and invalidates every row. The values are bit-identical to calling
// Decomposition.IPCAt / PerfLoss directly — the grid changes where the
// numbers are computed, never what they are.
type PredGrid struct {
	freqs units.FrequencySet
	nCPU  int
	ipc   []float64 // nCPU × len(freqs), row-major
	loss  []float64
	valid []bool
	decs  []Decomposition
}

// Reset prepares the grid for one scheduling pass over nCPU processors and
// the given frequency set, reusing previous allocations when the shape is
// unchanged. Every row starts invalid.
func (g *PredGrid) Reset(nCPU int, set units.FrequencySet) {
	g.freqs = set
	g.nCPU = nCPU
	need := nCPU * len(set)
	if cap(g.ipc) < need {
		g.ipc = make([]float64, need)
		g.loss = make([]float64, need)
	}
	g.ipc = g.ipc[:need]
	g.loss = g.loss[:need]
	if cap(g.valid) < nCPU {
		g.valid = make([]bool, nCPU)
		g.decs = make([]Decomposition, nCPU)
	}
	g.valid = g.valid[:nCPU]
	g.decs = g.decs[:nCPU]
	for i := range g.valid {
		g.valid[i] = false
	}
}

// Fill evaluates the decomposition's frequency sweep into cpu's row and
// marks it valid: IPC(f) for every set frequency, and PerfLoss versus the
// set maximum.
func (g *PredGrid) Fill(cpu int, d Decomposition) {
	g.decs[cpu] = d
	g.valid[cpu] = true
	row := cpu * len(g.freqs)
	fMax := g.freqs[len(g.freqs)-1]
	pMax := d.PerfAt(fMax)
	for i, f := range g.freqs {
		ipc := d.IPCAt(f)
		g.ipc[row+i] = ipc
		if pMax == 0 {
			g.loss[row+i] = 0
			continue
		}
		g.loss[row+i] = (pMax - ipc*f.Hz()) / pMax
	}
}

// Valid reports whether cpu's row was filled this pass (false for idle or
// unobserved processors).
func (g *PredGrid) Valid(cpu int) bool { return g.valid[cpu] }

// Dec returns the decomposition behind cpu's row; meaningful only when
// Valid(cpu).
func (g *PredGrid) Dec(cpu int) Decomposition { return g.decs[cpu] }

// NumCPUs returns the processor count of the current pass.
func (g *PredGrid) NumCPUs() int { return g.nCPU }

// NumFreqs returns the frequency count per row.
func (g *PredGrid) NumFreqs() int { return len(g.freqs) }

// Freq returns the fi-th set frequency (ascending).
func (g *PredGrid) Freq(fi int) units.Frequency { return g.freqs[fi] }

// IPC returns the predicted IPC of cpu at the fi-th set frequency.
func (g *PredGrid) IPC(cpu, fi int) float64 { return g.ipc[cpu*len(g.freqs)+fi] }

// Loss returns cpu's predicted performance loss at the fi-th set frequency
// versus the set maximum.
func (g *PredGrid) Loss(cpu, fi int) float64 { return g.loss[cpu*len(g.freqs)+fi] }
