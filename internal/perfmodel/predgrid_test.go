package perfmodel

import (
	"testing"

	"repro/internal/units"
)

func gridSet(t *testing.T) units.FrequencySet {
	t.Helper()
	return units.MustFrequencySet(units.MHz(250), units.MHz(500), units.MHz(750), units.MHz(1000))
}

// TestPredGridMatchesDecomposition asserts the grid is a pure cache: every
// cell equals the direct Decomposition computation bit-for-bit.
func TestPredGridMatchesDecomposition(t *testing.T) {
	set := gridSet(t)
	decs := []Decomposition{
		{InvAlpha: 1 / 1.4},                             // CPU-bound
		{InvAlpha: 1 / 1.1, StallSecPerInstr: 8e-9},     // memory-bound
		{InvAlpha: 1 / MaxAlpha, StallSecPerInstr: 2e-9},
	}
	var g PredGrid
	g.Reset(len(decs), set)
	for cpu, d := range decs {
		g.Fill(cpu, d)
	}
	fMax := set.Max()
	for cpu, d := range decs {
		if !g.Valid(cpu) {
			t.Fatalf("cpu %d not valid after Fill", cpu)
		}
		if g.Dec(cpu) != d {
			t.Fatalf("cpu %d Dec mismatch", cpu)
		}
		for fi, f := range set {
			if got, want := g.IPC(cpu, fi), d.IPCAt(f); got != want {
				t.Errorf("cpu %d IPC(%v): grid %v direct %v", cpu, f, got, want)
			}
			if got, want := g.Loss(cpu, fi), d.PerfLoss(fMax, f); got != want {
				t.Errorf("cpu %d Loss(%v): grid %v direct %v", cpu, f, got, want)
			}
		}
	}
	if g.NumCPUs() != 3 || g.NumFreqs() != 4 {
		t.Fatalf("shape %d×%d, want 3×4", g.NumCPUs(), g.NumFreqs())
	}
	if g.Freq(0) != set.Min() || g.Freq(3) != set.Max() {
		t.Fatal("Freq accessor disagrees with set order")
	}
}

// TestPredGridResetInvalidatesAndReuses asserts Reset clears validity and,
// for an unchanged shape, performs no new allocation.
func TestPredGridResetInvalidatesAndReuses(t *testing.T) {
	set := gridSet(t)
	var g PredGrid
	g.Reset(2, set)
	g.Fill(0, Decomposition{InvAlpha: 0.5})
	g.Reset(2, set)
	if g.Valid(0) || g.Valid(1) {
		t.Fatal("rows valid after Reset")
	}
	allocs := testing.AllocsPerRun(100, func() {
		g.Reset(2, set)
		g.Fill(0, Decomposition{InvAlpha: 0.5, StallSecPerInstr: 1e-9})
		g.Fill(1, Decomposition{InvAlpha: 0.25})
		_ = g.Loss(1, 0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reset+Fill allocates %v per pass, want 0", allocs)
	}
}

// TestPredGridGrowsForLargerPass asserts a larger CPU count after Reset is
// handled by growing the backing arrays.
func TestPredGridGrowsForLargerPass(t *testing.T) {
	set := gridSet(t)
	var g PredGrid
	g.Reset(1, set)
	g.Fill(0, Decomposition{InvAlpha: 0.5})
	g.Reset(8, set)
	for cpu := 0; cpu < 8; cpu++ {
		g.Fill(cpu, Decomposition{InvAlpha: 0.5})
		if g.Loss(cpu, len(set)-1) != 0 {
			t.Fatalf("cpu %d loss at f_max %v, want 0", cpu, g.Loss(cpu, len(set)-1))
		}
	}
}
