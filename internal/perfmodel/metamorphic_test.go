package perfmodel

import (
	"math"
	"testing"

	"repro/internal/counters"
	"repro/internal/memhier"
	"repro/internal/units"
)

// metamorphicFreqs is a five-point sweep with the observation at f_max.
var metamorphicFreqs = units.FrequencySet{
	units.MHz(600), units.MHz(800), units.MHz(1000), units.MHz(1200), units.MHz(1400),
}

func metaObs(memRefs uint64) Observation {
	return Observation{
		Delta: counters.Delta{
			Window:       0.02,
			Instructions: 2_000_000,
			Cycles:       3_000_000,
			L2Refs:       6 * memRefs,
			L3Refs:       2 * memRefs,
			MemRefs:      memRefs,
		},
		Freq: metamorphicFreqs[len(metamorphicFreqs)-1],
	}
}

// TestMetamorphicMemoryScaling checks the model's structural response to
// making a workload more memory-bound while holding the observed CPI
// fixed: scaling every memory delta by k grows the stall share, so at
// every frequency below the observation point IPC must not fall and
// PerfLoss must not rise (memory-bound work gets cheaper to slow down),
// both monotonically in k.
func TestMetamorphicMemoryScaling(t *testing.T) {
	pred, err := New(memhier.P630())
	if err != nil {
		t.Fatal(err)
	}
	var grids []PredGrid
	for _, memRefs := range []uint64{200, 500, 1100, 2400} {
		d, err := pred.Decompose(metaObs(memRefs))
		if err != nil {
			t.Fatal(err)
		}
		if d.InvAlpha <= 1/MaxAlpha {
			t.Fatalf("memRefs=%d hits the InvAlpha clamp; pick gentler deltas", memRefs)
		}
		var g PredGrid
		g.Reset(1, metamorphicFreqs)
		g.Fill(0, d)
		grids = append(grids, g)
	}
	nf := len(metamorphicFreqs)
	for k := 1; k < len(grids); k++ {
		prev, cur := &grids[k-1], &grids[k]
		for fi := 0; fi < nf; fi++ {
			if cur.IPC(0, fi) < prev.IPC(0, fi)-1e-12 {
				t.Errorf("step %d: IPC(%v) fell %g → %g as memory share grew",
					k, metamorphicFreqs[fi], prev.IPC(0, fi), cur.IPC(0, fi))
			}
			if cur.Loss(0, fi) > prev.Loss(0, fi)+1e-12 {
				t.Errorf("step %d: PerfLoss(%v) rose %g → %g as memory share grew",
					k, metamorphicFreqs[fi], prev.Loss(0, fi), cur.Loss(0, fi))
			}
		}
		// Observed CPI is held fixed, so IPC at the observation frequency
		// must be invariant under the scaling.
		if math.Abs(cur.IPC(0, nf-1)-prev.IPC(0, nf-1)) > 1e-12 {
			t.Errorf("step %d: IPC at the observation point moved", k)
		}
	}
}

// TestZeroMemoryDeltas checks the pure-CPU limit: with no memory traffic
// the stall term vanishes, IPC is the same at every frequency, and
// PerfLoss collapses to exactly 1 − f/f_max.
func TestZeroMemoryDeltas(t *testing.T) {
	pred, err := New(memhier.P630())
	if err != nil {
		t.Fatal(err)
	}
	obs := Observation{
		Delta: counters.Delta{Window: 0.02, Instructions: 2_000_000, Cycles: 3_000_000},
		Freq:  metamorphicFreqs[len(metamorphicFreqs)-1],
	}
	d, err := pred.Decompose(obs)
	if err != nil {
		t.Fatal(err)
	}
	if d.StallSecPerInstr != 0 {
		t.Fatalf("zero memory deltas decomposed to stall %g", d.StallSecPerInstr)
	}
	var g PredGrid
	g.Reset(1, metamorphicFreqs)
	g.Fill(0, d)
	fmax := metamorphicFreqs[len(metamorphicFreqs)-1]
	for fi, f := range metamorphicFreqs {
		if math.Abs(g.IPC(0, fi)-g.IPC(0, len(metamorphicFreqs)-1)) > 1e-12 {
			t.Errorf("pure-CPU IPC varies with frequency at %v", f)
		}
		want := 1 - f.Hz()/fmax.Hz()
		if math.Abs(g.Loss(0, fi)-want) > 1e-12 {
			t.Errorf("pure-CPU PerfLoss(%v) = %g, want 1−f/f_max = %g", f, g.Loss(0, fi), want)
		}
	}
}

// TestGridZeroPerfReference pins the pMax==0 guard: a degenerate
// decomposition with no achievable performance fills a zero-loss row
// instead of dividing by zero.
func TestGridZeroPerfReference(t *testing.T) {
	var g PredGrid
	g.Reset(1, metamorphicFreqs)
	g.Fill(0, Decomposition{InvAlpha: math.Inf(1), StallSecPerInstr: 0})
	for fi := range metamorphicFreqs {
		if g.Loss(0, fi) != 0 {
			t.Fatalf("zero-perf reference produced loss %g, want the guarded 0", g.Loss(0, fi))
		}
		if g.IPC(0, fi) != 0 {
			t.Fatalf("IPC against infinite CPI = %g, want 0", g.IPC(0, fi))
		}
	}
}
