package perfmodel_test

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/memhier"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

// ExamplePredictor_Decompose reproduces the paper's core prediction flow:
// observe one counter window at the current frequency, split the cycles
// into frequency-dependent and -independent parts, and predict IPC and
// performance loss at a candidate frequency.
func ExamplePredictor_Decompose() {
	p, _ := perfmodel.New(memhier.P630())

	// A 12 ms window at 1 GHz: 1.05M instructions over 12.15M cycles with
	// heavy memory traffic (an mcf-like profile: ~10.6 ns of memory time
	// per instruction).
	window := perfmodel.Observation{
		Freq: units.GHz(1),
		Delta: counters.Delta{
			Window:       0.01215,
			Instructions: 1_050_000,
			Cycles:       12_150_000,
			L2Refs:       31_500,
			L3Refs:       6_300,
			MemRefs:      25_200,
		},
	}
	dec, _ := p.Decompose(window)

	fmt.Printf("observed IPC:   %.3f\n", window.Delta.IPC())
	fmt.Printf("IPC at 650MHz:  %.3f\n", dec.IPCAt(units.MHz(650)))
	fmt.Printf("loss at 650MHz: %.1f%%\n", dec.PerfLoss(units.GHz(1), units.MHz(650))*100)
	// Output:
	// observed IPC:   0.086
	// IPC at 650MHz:  0.127
	// loss at 650MHz: 4.5%
}

// ExampleDecomposition_IdealFrequency shows the §5 closed form: the
// continuous frequency retaining 95% of full-speed performance.
func ExampleDecomposition_IdealFrequency() {
	dec := perfmodel.Decomposition{InvAlpha: 1 / 1.1, StallSecPerInstr: 9e-9}
	f, _ := dec.IdealFrequency(units.GHz(1), 0.05)
	fmt.Printf("f_ideal = %.0f MHz\n", f.MHz())
	// Output:
	// f_ideal = 635 MHz
}
