package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/counters"
	"repro/internal/memhier"
	"repro/internal/units"
)

func pred(t *testing.T) Predictor {
	t.Helper()
	p, err := New(memhier.P630())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// syntheticDelta builds the counter delta an ideal machine would produce
// for a workload with the given α and rates over instr instructions at
// frequency f.
func syntheticDelta(alpha float64, rates memhier.AccessRates, instr uint64, f units.Frequency) counters.Delta {
	h := memhier.P630()
	stall := rates.StallTimePerInstr(h)
	cpi := 1/alpha + stall*f.Hz()
	cycles := uint64(float64(instr) * cpi)
	return counters.Delta{
		Window:       float64(cycles) / f.Hz(),
		Instructions: instr,
		Cycles:       cycles,
		L2Refs:       uint64(float64(instr) * rates.L2PerInstr),
		L3Refs:       uint64(float64(instr) * rates.L3PerInstr),
		MemRefs:      uint64(float64(instr) * rates.MemPerInstr),
	}
}

func TestNewRejectsBrokenHierarchy(t *testing.T) {
	h := memhier.P630()
	h.RefClock = 0
	if _, err := New(h); err == nil {
		t.Error("broken hierarchy accepted")
	}
}

func TestObservationValidate(t *testing.T) {
	good := Observation{
		Delta: counters.Delta{Window: 0.01, Instructions: 100, Cycles: 100},
		Freq:  units.GHz(1),
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good observation rejected: %v", err)
	}
	bad := good
	bad.Freq = 0
	if bad.Validate() == nil {
		t.Error("zero frequency accepted")
	}
	bad = good
	bad.Delta.Instructions = 0
	if bad.Validate() == nil {
		t.Error("no-work observation accepted")
	}
}

func TestDecomposeRecoversKnownWorkload(t *testing.T) {
	p := pred(t)
	alpha := 1.4
	rates := memhier.AccessRates{L2PerInstr: 0.01, L3PerInstr: 0.002, MemPerInstr: 0.005}
	f := units.GHz(1)
	obs := Observation{Delta: syntheticDelta(alpha, rates, 1e9, f), Freq: f}
	d, err := p.Decompose(obs)
	if err != nil {
		t.Fatal(err)
	}
	wantStall := rates.StallTimePerInstr(memhier.P630())
	if math.Abs(d.StallSecPerInstr-wantStall)/wantStall > 1e-6 {
		t.Errorf("stall = %v, want %v", d.StallSecPerInstr, wantStall)
	}
	if math.Abs(d.InvAlpha-1/alpha) > 1e-3 {
		t.Errorf("invAlpha = %v, want %v", d.InvAlpha, 1/alpha)
	}
}

func TestDecomposeClampsImplausibleAlpha(t *testing.T) {
	p := pred(t)
	// An observation whose memory term alone exceeds the observed CPI:
	// IPC=2 (CPI=0.5) but huge reported memory counts.
	d := counters.Delta{
		Window: 0.01, Instructions: 1000, Cycles: 500,
		MemRefs: 100, // 0.1/instr · 393ns · 1GHz = 39.3 cycles/instr ≫ 0.5
	}
	dec, err := p.Decompose(Observation{Delta: d, Freq: units.GHz(1)})
	if err != nil {
		t.Fatal(err)
	}
	if dec.InvAlpha != 1/MaxAlpha {
		t.Errorf("InvAlpha = %v, want clamp at %v", dec.InvAlpha, 1/MaxAlpha)
	}
}

func TestIPCPredictionAcrossFrequencies(t *testing.T) {
	// Decompose at 1 GHz, predict at 500 MHz, compare against the ground
	// truth of the same workload at 500 MHz.
	p := pred(t)
	alpha := 1.2
	rates := memhier.AccessRates{L2PerInstr: 0.02, MemPerInstr: 0.01}
	obs := Observation{Delta: syntheticDelta(alpha, rates, 1e9, units.GHz(1)), Freq: units.GHz(1)}
	d, err := p.Decompose(obs)
	if err != nil {
		t.Fatal(err)
	}
	truth500 := syntheticDelta(alpha, rates, 1e9, units.MHz(500)).IPC()
	got := d.IPCAt(units.MHz(500))
	if math.Abs(got-truth500)/truth500 > 1e-3 {
		t.Errorf("predicted IPC@500MHz = %v, truth %v", got, truth500)
	}
}

func TestIPCMonotonicity(t *testing.T) {
	d := Decomposition{InvAlpha: 1 / 1.4, StallSecPerInstr: 5e-9}
	// IPC falls with frequency (more cycles wasted per memory access),
	// performance rises with frequency.
	if !(d.IPCAt(units.MHz(500)) > d.IPCAt(units.GHz(1))) {
		t.Error("IPC should decrease with frequency")
	}
	if !(d.PerfAt(units.MHz(500)) < d.PerfAt(units.GHz(1))) {
		t.Error("Perf should increase with frequency")
	}
}

func TestPerfLossSigns(t *testing.T) {
	d := Decomposition{InvAlpha: 1 / 1.4, StallSecPerInstr: 2e-9}
	loss := d.PerfLoss(units.GHz(1), units.MHz(600))
	if loss <= 0 || loss >= 1 {
		t.Errorf("loss going down = %v, want in (0,1)", loss)
	}
	gain := d.PerfLoss(units.MHz(600), units.GHz(1))
	if gain >= 0 {
		t.Errorf("going up should be a negative loss, got %v", gain)
	}
	if d.PerfLoss(units.GHz(1), units.GHz(1)) != 0 {
		t.Error("same frequency should have zero loss")
	}
}

func TestPureCPUWorkloadLossIsLinear(t *testing.T) {
	// With no memory component, halving frequency halves performance.
	d := Decomposition{InvAlpha: 1 / 1.3, StallSecPerInstr: 0}
	loss := d.PerfLoss(units.GHz(1), units.MHz(500))
	if math.Abs(loss-0.5) > 1e-12 {
		t.Errorf("pure-CPU loss at half frequency = %v, want 0.5", loss)
	}
	if !math.IsInf(d.SaturationPerf(), 1) {
		t.Error("pure CPU saturation should be +Inf")
	}
}

func TestMemoryBoundWorkloadSaturates(t *testing.T) {
	// Calibrated like mcf: α·S·1GHz ≈ 9.3 → dropping 1 GHz → 650 MHz
	// loses under 5%.
	d := Decomposition{InvAlpha: 1 / 1.1, StallSecPerInstr: 8.44e-9}
	loss := d.PerfLoss(units.GHz(1), units.MHz(650))
	if loss >= 0.05 {
		t.Errorf("memory-bound loss at 650MHz = %v, want < 0.05", loss)
	}
	if sat := d.SaturationPerf(); math.Abs(sat-1/8.44e-9)/sat > 1e-9 {
		t.Errorf("saturation = %v", sat)
	}
}

func TestIdealFrequencyCPUBound(t *testing.T) {
	// Predicted IPC at fmax > 1 → f_ideal = fmax (§5).
	d := Decomposition{InvAlpha: 1 / 1.4, StallSecPerInstr: 0.1e-9}
	f, err := d.IdealFrequency(units.GHz(1), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if f != units.GHz(1) {
		t.Errorf("CPU-bound ideal = %v, want fmax", f)
	}
}

func TestIdealFrequencyMemoryBound(t *testing.T) {
	d := Decomposition{InvAlpha: 1 / 1.1, StallSecPerInstr: 8.44e-9}
	f, err := d.IdealFrequency(units.GHz(1), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if f >= units.GHz(1) || f <= units.MHz(400) {
		t.Fatalf("ideal frequency = %v, want interior", f)
	}
	// Defining property: performance at f_ideal is exactly (1-ε)·Perf(fmax).
	want := d.PerfAt(units.GHz(1)) * 0.95
	got := d.PerfAt(f)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("Perf(f_ideal) = %v, want %v", got, want)
	}
}

func TestIdealFrequencyValidation(t *testing.T) {
	d := Decomposition{InvAlpha: 1, StallSecPerInstr: 1e-9}
	if _, err := d.IdealFrequency(units.GHz(1), 0); err == nil {
		t.Error("epsilon=0 accepted")
	}
	if _, err := d.IdealFrequency(units.GHz(1), 1); err == nil {
		t.Error("epsilon=1 accepted")
	}
	if _, err := d.IdealFrequency(0, 0.05); err == nil {
		t.Error("fmax=0 accepted")
	}
}

func TestIdealFrequencyNeverExceedsFmaxProperty(t *testing.T) {
	err := quick.Check(func(aRaw, sRaw uint16) bool {
		alpha := 0.2 + float64(aRaw%60)/10 // 0.2 .. 6.1
		stall := float64(sRaw%1000) * 1e-11
		d := Decomposition{InvAlpha: 1 / alpha, StallSecPerInstr: stall}
		f, err := d.IdealFrequency(units.GHz(1), 0.05)
		if err != nil {
			return false
		}
		return f > 0 && f <= units.GHz(1)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCalibrateTwoPoint(t *testing.T) {
	alpha := 1.3
	rates := memhier.AccessRates{L2PerInstr: 0.015, MemPerInstr: 0.008}
	a := Observation{Delta: syntheticDelta(alpha, rates, 1e9, units.GHz(1)), Freq: units.GHz(1)}
	b := Observation{Delta: syntheticDelta(alpha, rates, 1e9, units.MHz(600)), Freq: units.MHz(600)}
	d, err := CalibrateTwoPoint(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantStall := rates.StallTimePerInstr(memhier.P630())
	if math.Abs(d.StallSecPerInstr-wantStall)/wantStall > 1e-3 {
		t.Errorf("two-point stall = %v, want %v", d.StallSecPerInstr, wantStall)
	}
	if math.Abs(d.InvAlpha-1/alpha) > 1e-2 {
		t.Errorf("two-point invAlpha = %v, want %v", d.InvAlpha, 1/alpha)
	}
}

func TestCalibrateTwoPointRejectsSameFrequency(t *testing.T) {
	o := Observation{
		Delta: counters.Delta{Window: 0.01, Instructions: 100, Cycles: 200},
		Freq:  units.GHz(1),
	}
	if _, err := CalibrateTwoPoint(o, o); err == nil {
		t.Error("same-frequency calibration accepted")
	}
}

func TestDecomposeWithBounds(t *testing.T) {
	p := pred(t)
	rates := memhier.AccessRates{MemPerInstr: 0.01}
	obs := Observation{Delta: syntheticDelta(1.2, rates, 1e9, units.GHz(1)), Freq: units.GHz(1)}
	b, err := p.DecomposeWithBounds(obs, 0.9, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := b.IPCRangeAt(units.MHz(500))
	if lo > hi {
		t.Errorf("bounds inverted: %v > %v", lo, hi)
	}
	// The nominal prediction lies within the band.
	base, _ := p.Decompose(obs)
	nominal := base.IPCAt(units.MHz(500))
	if nominal < lo-1e-9 || nominal > hi+1e-9 {
		t.Errorf("nominal %v outside [%v,%v]", nominal, lo, hi)
	}
	if _, err := p.DecomposeWithBounds(obs, 0, 1); err == nil {
		t.Error("zero loScale accepted")
	}
	if _, err := p.DecomposeWithBounds(obs, 1.2, 0.9); err == nil {
		t.Error("inverted scales accepted")
	}
}

func TestFromPhaseTruth(t *testing.T) {
	d, err := FromPhaseTruth(1.4, 5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if d.InvAlpha != 1/1.4 || d.StallSecPerInstr != 5e-9 {
		t.Errorf("FromPhaseTruth = %+v", d)
	}
	if _, err := FromPhaseTruth(0, 1); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := FromPhaseTruth(1, -1); err == nil {
		t.Error("negative stall accepted")
	}
	if _, err := FromPhaseTruth(99, 0); err == nil {
		t.Error("alpha=99 accepted")
	}
}

// Property: prediction round-trip. For any physical workload, decomposing a
// synthetic observation at frequency g and predicting at g itself must
// reproduce the observed IPC.
func TestDecomposeSelfConsistencyProperty(t *testing.T) {
	p := pred(t)
	err := quick.Check(func(aRaw, l2Raw, memRaw, fRaw uint16) bool {
		alpha := 0.5 + float64(aRaw%30)/10
		rates := memhier.AccessRates{
			L2PerInstr:  float64(l2Raw%50) / 1000,
			MemPerInstr: float64(memRaw%30) / 1000,
		}
		f := units.MHz(float64(fRaw%750) + 250)
		obs := Observation{Delta: syntheticDelta(alpha, rates, 1e8, f), Freq: f}
		if obs.Validate() != nil {
			return true // degenerate rounding case, skip
		}
		d, err := p.Decompose(obs)
		if err != nil {
			return false
		}
		return math.Abs(d.IPCAt(f)-obs.Delta.IPC()) < 1e-2
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
