package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// FlightRecorder is a bounded in-memory sink: a fixed-size ring of the
// most recent trace events plus fixed-size rings of per-quantum series
// (per-node power, charged-vs-budget, demotion counts, pass latency).
// It is the post-mortem layer — always attached, never growing — whose
// snapshot is dumped when an invariant check fires, so a failure ships
// the seconds of history that led up to it.
//
// After warm-up (rings full, every node key seen) Emit performs zero
// heap allocations: events are shallow-copied into preallocated slots
// and series points overwrite ring positions in place. Shallow copies
// are safe because producers build each emitted event's slices fresh;
// consumers of Snapshot must not mutate them.
type FlightRecorder struct {
	mu     sync.Mutex
	events []Event
	next   int
	total  uint64

	seriesCap int
	nodePower map[string]*SeriesRing
	charged   *SeriesRing
	budget    *SeriesRing
	demotions *SeriesRing
	passLat   *SeriesRing
}

// SeriesRing is one bounded (time, value) series.
type SeriesRing struct {
	name  string
	t, v  []float64
	next  int
	total uint64
}

func newSeriesRing(name string, capacity int) *SeriesRing {
	return &SeriesRing{name: name, t: make([]float64, 0, capacity), v: make([]float64, 0, capacity)}
}

func (s *SeriesRing) append(t, v float64) {
	if len(s.t) < cap(s.t) {
		s.t = append(s.t, t)
		s.v = append(s.v, v)
	} else {
		s.t[s.next] = t
		s.v[s.next] = v
	}
	s.next = (s.next + 1) % cap(s.t)
	s.total++
}

// points returns the retained samples oldest-first.
func (s *SeriesRing) points() [][2]float64 {
	n := len(s.t)
	out := make([][2]float64, 0, n)
	start := 0
	if s.total > uint64(n) {
		start = s.next
	}
	for i := 0; i < n; i++ {
		j := (start + i) % n
		out = append(out, [2]float64{s.t[j], s.v[j]})
	}
	return out
}

// DefaultFlightEvents and DefaultFlightSamples size the recorder for a
// few seconds of cluster history at default cadence.
const (
	DefaultFlightEvents  = 256
	DefaultFlightSamples = 512
)

// NewFlightRecorder builds a recorder retaining the last eventCap events
// and sampleCap points per series. Non-positive capacities select the
// defaults.
func NewFlightRecorder(eventCap, sampleCap int) *FlightRecorder {
	if eventCap <= 0 {
		eventCap = DefaultFlightEvents
	}
	if sampleCap <= 0 {
		sampleCap = DefaultFlightSamples
	}
	return &FlightRecorder{
		events:    make([]Event, 0, eventCap),
		seriesCap: sampleCap,
		nodePower: make(map[string]*SeriesRing),
		charged:   newSeriesRing("charged_w", sampleCap),
		budget:    newSeriesRing("budget_w", sampleCap),
		demotions: newSeriesRing("demotions", sampleCap),
		passLat:   newSeriesRing("pass_latency_s", sampleCap),
	}
}

// Emit records the event and folds it into the per-quantum series.
func (f *FlightRecorder) Emit(e Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.events) < cap(f.events) {
		f.events = append(f.events, e)
	} else {
		f.events[f.next] = e
	}
	f.next = (f.next + 1) % cap(f.events)
	f.total++

	switch e.Type {
	case EventQuantum:
		s, ok := f.nodePower[e.Node]
		if !ok {
			// The empty node is the machine/cluster aggregate row, same
			// convention as the Ledger.
			name := "power_w"
			if e.Node != "" {
				name = "power_w:" + e.Node
			}
			s = newSeriesRing(name, f.seriesCap)
			f.nodePower[e.Node] = s
		}
		s.append(e.At, e.CPUPowerW)
	case EventSchedule:
		charged := e.ChargedW
		if charged == 0 {
			charged = e.TablePowerW
		}
		f.charged.append(e.At, charged)
		f.budget.append(e.At, e.BudgetW)
		f.demotions.append(e.At, float64(len(e.Demotions)))
	case EventSpan:
		if e.Span == SpanPass {
			f.passLat.append(e.At, e.DurS)
		}
	}
}

// FlightSeries is one series of a snapshot, points oldest-first.
type FlightSeries struct {
	Name   string       `json:"name"`
	Total  uint64       `json:"total"`
	Points [][2]float64 `json:"points"`
}

// FlightSnapshot is a frozen copy of the recorder's state.
type FlightSnapshot struct {
	// TotalEvents counts every event ever emitted; len(Events) is what
	// the ring retained.
	TotalEvents uint64         `json:"total_events"`
	Events      []Event        `json:"events"`
	Series      []FlightSeries `json:"series"`
}

// Snapshot freezes the current state: events oldest-first, series in
// deterministic (fixed, then node-name-sorted) order.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	snap := FlightSnapshot{TotalEvents: f.total}
	n := len(f.events)
	snap.Events = make([]Event, 0, n)
	start := 0
	if f.total > uint64(n) {
		start = f.next
	}
	for i := 0; i < n; i++ {
		snap.Events = append(snap.Events, f.events[(start+i)%n])
	}
	for _, s := range []*SeriesRing{f.budget, f.charged, f.demotions, f.passLat} {
		if s.total > 0 {
			snap.Series = append(snap.Series, FlightSeries{Name: s.name, Total: s.total, Points: s.points()})
		}
	}
	nodes := make([]string, 0, len(f.nodePower))
	for n := range f.nodePower {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		s := f.nodePower[n]
		snap.Series = append(snap.Series, FlightSeries{Name: s.name, Total: s.total, Points: s.points()})
	}
	return snap
}

// DumpJSON writes the snapshot as indented JSON — the post-mortem file
// an invariant violation ships.
func (f *FlightRecorder) DumpJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Snapshot())
}
