package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func feedLedger(l *Ledger) {
	// Two nodes sampled each second; right-rectangle integration means the
	// final sample's power is not yet charged.
	for i := 0; i < 5; i++ {
		l.Emit(Event{Type: EventQuantum, At: float64(i), Node: "a", CPUPowerW: 100})
		l.Emit(Event{Type: EventQuantum, At: float64(i), Node: "b", CPUPowerW: 50})
	}
	// Three passes 2 s apart: charged 160 W then 260 W against a 200 W
	// budget → one overshoot interval of 2 s × 60 W.
	l.Emit(Event{Type: EventSchedule, At: 0, Trigger: "startup", BudgetW: 200, ChargedW: 160,
		CPUs: []CPUTrace{{CPU: 0}}})
	l.Emit(Event{Type: EventSchedule, At: 2, Trigger: "timer", BudgetW: 200, ChargedW: 260, BudgetMissed: true,
		Demotions: []DemotionTrace{{CPU: 0}},
		CPUs:      []CPUTrace{{CPU: 0, IPCError: -0.1, IPCErrorValid: true}}})
	l.Emit(Event{Type: EventSchedule, At: 4, Trigger: "timer", BudgetW: 200, ChargedW: 180,
		CPUs: []CPUTrace{{CPU: 0, IPCError: 0.3, IPCErrorValid: true}}})
	l.Emit(Event{Type: EventSpan, At: 0, PassID: 1, Span: SpanPass, DurS: 0.002})
	l.Emit(Event{Type: EventSpan, At: 2, PassID: 2, Span: SpanPass, DurS: 0.004})
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger()
	feedLedger(l)
	s := l.Summary()

	if len(s.Nodes) != 2 || s.Nodes[0].Node != "a" || s.Nodes[1].Node != "b" {
		t.Fatalf("nodes = %+v", s.Nodes)
	}
	if s.Nodes[0].Joules != 400 || s.Nodes[1].Joules != 200 {
		t.Errorf("joules = %v/%v, want 400/200", s.Nodes[0].Joules, s.Nodes[1].Joules)
	}
	if s.TotalJoules != 600 {
		t.Errorf("total = %v, want 600", s.TotalJoules)
	}
	if s.Nodes[0].AvgW != 100 || s.Nodes[0].PeakW != 100 || s.Nodes[0].Seconds != 4 {
		t.Errorf("node a row = %+v", s.Nodes[0])
	}
	// Budget integral: 200 W × 4 s. Charged: 160×2 + 260×2.
	if s.BudgetJoules != 800 || s.ChargedJoules != 840 {
		t.Errorf("budget/charged = %v/%v, want 800/840", s.BudgetJoules, s.ChargedJoules)
	}
	if s.OvershootSeconds != 2 || s.OvershootJoules != 120 || s.PeakOvershootW != 60 {
		t.Errorf("overshoot = %v s / %v J / %v W", s.OvershootSeconds, s.OvershootJoules, s.PeakOvershootW)
	}
	if s.Passes != 3 || s.MissedPasses != 1 || s.Demotions != 1 {
		t.Errorf("passes=%d missed=%d demotions=%d", s.Passes, s.MissedPasses, s.Demotions)
	}
	if len(s.Triggers) != 2 || s.Triggers[0].Trigger != "startup" || s.Triggers[1].Passes != 2 {
		t.Errorf("triggers = %+v", s.Triggers)
	}
	if s.PredSamples != 2 || s.PredMeanAbsErr != 0.2 || s.PredMaxAbsErr != 0.3 {
		t.Errorf("pred = %d/%v/%v", s.PredSamples, s.PredMeanAbsErr, s.PredMaxAbsErr)
	}
	if s.Latency == nil || s.Latency.Passes != 2 || s.Latency.MaxMs != 4 {
		t.Errorf("latency = %+v", s.Latency)
	}
}

// TestLedgerAggregateRow: a single-machine trace has only the unnamed
// quantum row; it must carry the total rather than be dropped — and when
// named nodes exist, the unnamed row is an aggregate duplicate that must
// not double-count.
func TestLedgerAggregateRow(t *testing.T) {
	l := NewLedger()
	l.Emit(Event{Type: EventQuantum, At: 0, CPUPowerW: 100})
	l.Emit(Event{Type: EventQuantum, At: 1, CPUPowerW: 100})
	if got := l.Summary().TotalJoules; got != 100 {
		t.Errorf("machine-only total = %v, want 100", got)
	}

	l2 := NewLedger()
	for i := 0; i < 2; i++ {
		at := float64(i)
		l2.Emit(Event{Type: EventQuantum, At: at, Node: "a", CPUPowerW: 60})
		l2.Emit(Event{Type: EventQuantum, At: at, Node: "b", CPUPowerW: 40})
		l2.Emit(Event{Type: EventQuantum, At: at, CPUPowerW: 100}) // coordinator aggregate
	}
	if got := l2.Summary().TotalJoules; got != 100 {
		t.Errorf("named+aggregate total = %v, want 100 (no double count)", got)
	}
}

func TestLedgerTextDeterministicAndSectioned(t *testing.T) {
	render := func(sections []string) string {
		l := NewLedger()
		feedLedger(l)
		var sb strings.Builder
		if err := l.Summary().Filter(sections).WriteText(&sb, sections); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	all, err := ParseSections("all")
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(all), render(all); a != b {
		t.Errorf("identical ledgers rendered differently:\n%s\n---\n%s", a, b)
	}
	det, err := ParseSections("compliance, energy")
	if err != nil {
		t.Fatal(err)
	}
	// Order is normalised to render order regardless of spec order.
	if det[0] != SectionEnergy || det[1] != SectionCompliance {
		t.Fatalf("sections = %v", det)
	}
	out := render(det)
	if strings.Contains(out, "latency") || !strings.Contains(out, "overshoot 2.000 s") {
		t.Errorf("sectioned output:\n%s", out)
	}
	if !strings.Contains(out, "600.000 J") {
		t.Errorf("missing total row:\n%s", out)
	}
	if _, err := ParseSections("energy,bogus"); err == nil {
		t.Error("unknown section accepted")
	}
}

func TestReplayJSONL(t *testing.T) {
	trace := `{"type":"quantum","t":0,"node":"a","cpu_power_w":10}
{"type":"quantum","t":1,"node":"a","cpu_power_w":10}

{"type":"schedule","t":0,"trigger":"startup","budget_w":50,"charged_w":20}
`
	l := NewLedger()
	n, err := ReplayJSONL(strings.NewReader(trace), l)
	if err != nil || n != 3 {
		t.Fatalf("replay = %d events, err %v", n, err)
	}
	if got := l.Summary().TotalJoules; got != 10 {
		t.Errorf("replayed total = %v, want 10", got)
	}
	if _, err := ReplayJSONL(strings.NewReader("{broken"), l); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestLedgerServingSection(t *testing.T) {
	l := NewLedger()
	// Two nodes, same class: totals sum counters, p99 takes the worst
	// node, and only the latest event per (node, class) counts.
	l.Emit(Event{Type: EventServe, At: 1, Node: "n0", Class: "web",
		Offered: 10, Admitted: 9, Rejected: 1, Completed: 8, TimedOut: 1, SLOOk: 6, QueueLen: 0, P99S: 0.030})
	l.Emit(Event{Type: EventServe, At: 2, Node: "n0", Class: "web",
		Offered: 20, Admitted: 18, Rejected: 2, Completed: 16, TimedOut: 2, SLOOk: 12, QueueLen: 1, P99S: 0.040})
	l.Emit(Event{Type: EventServe, At: 2, Node: "n1", Class: "web",
		Offered: 10, Admitted: 10, Completed: 10, SLOOk: 9, P99S: 0.070})
	l.Emit(Event{Type: EventServe, At: 2, Node: "n1", Class: "batch",
		Offered: 5, Admitted: 5, Completed: 4, SLOOk: 4, InService: 1, P99S: 0.500})
	s := l.Summary()
	if len(s.Serving) != 2 {
		t.Fatalf("serving rows = %d, want 2", len(s.Serving))
	}
	if s.Serving[0].Class != "batch" || s.Serving[1].Class != "web" {
		t.Fatalf("rows not class-sorted: %+v", s.Serving)
	}
	web := s.Serving[1]
	if web.Offered != 30 || web.Admitted != 28 || web.Completed != 26 || web.SLOOk != 21 {
		t.Errorf("web totals = %+v", web)
	}
	if web.P99S != 0.070 {
		t.Errorf("web p99 = %v, want worst-node 0.070", web.P99S)
	}
	if want := 21.0 / 28.0; math.Abs(web.Attainment-want) > 1e-12 {
		t.Errorf("web attainment = %v, want %v", web.Attainment, want)
	}
	// Deselecting the section drops the rows.
	if f := s.Filter([]string{SectionEnergy}); f.Serving != nil {
		t.Error("filter kept serving rows")
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf, []string{SectionServing}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "web") || !strings.Contains(buf.String(), "batch") {
		t.Errorf("text rendering missing rows:\n%s", buf.String())
	}
}
