package obs

import (
	"strings"
	"testing"
)

func TestReadDecisions(t *testing.T) {
	trace := strings.Join([]string{
		`{"type":"span","t":0.1,"name":"pass"}`,
		`{"type":"schedule","t":0.2,"trigger":"timer","budget_w":200,"cpus":[` +
			`{"cpu":0,"desired_mhz":1000,"actual_mhz":750,"voltage_v":1.4,"predicted_ipc":1.2,` +
			`"obs":{"window_s":0.02,"instr":100,"cycles":200,"freq_hz":1e9}},` +
			`{"cpu":1,"idle":true,"desired_mhz":250,"actual_mhz":250,"voltage_v":1.2}]}`,
		`{"type":"quantum","t":0.3}`,
		`{"type":"schedule","t":0.4,"trigger":"timer","budget_w":200,"cpus":[` +
			`{"cpu":0,"desired_mhz":1000,"actual_mhz":1000,"voltage_v":1.5,"predicted_ipc":1.1}]}`,
	}, "\n") + "\n"

	passes, err := ReadDecisions(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 2 {
		t.Fatalf("got %d passes, want 2", len(passes))
	}
	if passes[0].At != 0.2 || passes[1].At != 0.4 {
		t.Fatalf("pass order wrong: %g, %g", passes[0].At, passes[1].At)
	}
	o := passes[0].CPUs[0].Obs
	if o == nil || o.Instructions != 100 || o.FreqHz != 1e9 || o.WindowS != 0.02 {
		t.Fatalf("observation not round-tripped: %+v", o)
	}
	if passes[0].CPUs[1].Obs != nil {
		t.Fatal("idle CPU grew an observation")
	}

	// First pass: busy CPU has its observation, idle CPU needs none.
	if !Replayable(passes[0]) {
		t.Fatal("fully recorded pass not replayable")
	}
	// Second pass: a predicted CPU without its observation window.
	if Replayable(passes[1]) {
		t.Fatal("pass missing observations reported replayable")
	}
	if Replayable(Event{Type: EventQuantum}) {
		t.Fatal("non-schedule event reported replayable")
	}

	if _, err := ReadDecisions(strings.NewReader("{broken\n")); err == nil {
		t.Fatal("broken line not rejected")
	}
}
