package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func scheduleEvent() Event {
	return Event{
		Type: EventSchedule, At: 0.2, Trigger: "budget-change",
		BudgetW: 294, TablePowerW: 280, HeadroomW: 14,
		CPUs: []CPUTrace{
			{CPU: 0, DesiredMHz: 1000, ActualMHz: 650, VoltageV: 1.2,
				PredictedLoss: 0.03, PredictedIPC: 0.9, ObservedIPC: 0.95,
				IPCError: -0.02, IPCErrorValid: true},
			{CPU: 1, Idle: true, DesiredMHz: 250, ActualMHz: 250, VoltageV: 1.1},
		},
		Demotions: []DemotionTrace{
			{CPU: 0, FromMHz: 1000, ToMHz: 650, PredictedLoss: 0.03},
		},
	}
}

func TestJSONLWriterRoundTrips(t *testing.T) {
	var sb strings.Builder
	j := NewJSONLWriter(&sb)
	j.Emit(scheduleEvent())
	j.Emit(Event{Type: EventQuantum, At: 0.21, SystemPowerW: 500, CPUPowerW: 280})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var events []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("unparseable line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if e.Type != EventSchedule || e.Trigger != "budget-change" || len(e.CPUs) != 2 || len(e.Demotions) != 1 {
		t.Errorf("schedule event mangled: %+v", e)
	}
	if e.CPUs[0].DesiredMHz != 1000 || e.CPUs[0].ActualMHz != 650 || !e.CPUs[0].IPCErrorValid {
		t.Errorf("cpu trace mangled: %+v", e.CPUs[0])
	}
	if events[1].Type != EventQuantum || events[1].SystemPowerW != 500 {
		t.Errorf("quantum event mangled: %+v", events[1])
	}
}

func TestTeeAndBuffer(t *testing.T) {
	var a, b Buffer
	s := Tee(nil, &a, nil, &b)
	s.Emit(scheduleEvent())
	s.Emit(Event{Type: EventQuantum})
	for _, buf := range []*Buffer{&a, &b} {
		if got := buf.Count("", ""); got != 2 {
			t.Errorf("buffer saw %d events", got)
		}
		if got := buf.Count(EventSchedule, "budget-change"); got != 1 {
			t.Errorf("filtered count = %d", got)
		}
	}
	if _, ok := Tee().(NopSink); !ok {
		t.Error("empty Tee is not NopSink")
	}
	if Tee(&a) != Sink(&a) {
		t.Error("single-sink Tee added indirection")
	}
	NopSink{}.Emit(scheduleEvent()) // must not panic
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	ev := scheduleEvent()
	m.Emit(ev)
	m.Emit(ev)
	miss := ev
	miss.Trigger = "timer"
	miss.BudgetMissed = true
	m.Emit(miss)
	m.Emit(Event{Type: EventQuantum, SystemPowerW: 510, CPUPowerW: 300, BudgetW: 294})

	var sb strings.Builder
	if err := m.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`fvsst_decisions_total{trigger="budget-change"} 2`,
		`fvsst_decisions_total{trigger="timer"} 1`,
		`fvsst_budget_misses_total 1`,
		`fvsst_demotions_total{node="",cpu="0"} 3`,
		`fvsst_cpu_frequency_mhz{node="",cpu="0"} 650`,
		`fvsst_cpu_frequency_decisions_total{node="",cpu="0",mhz="650"} 3`,
		`fvsst_cpu_idle_decisions_total{node="",cpu="1"} 3`,
		`fvsst_budget_headroom_watts 14`,
		`machine_system_power_watts 510`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	// Three valid IPC-error observations of |−0.02| land under the 0.02 bound.
	if !strings.Contains(out, `fvsst_prediction_abs_error_bucket{le="0.02"} 3`) {
		t.Errorf("prediction error histogram wrong:\n%s", out)
	}
}
