package obs

import "strconv"

// Metrics is a Sink that aggregates trace events into a Registry, giving
// the run's quantitative profile for free wherever tracing is wired:
// trigger counts, Step-2 demotion counts and losses, budget headroom,
// time-at-frequency residency and the online prediction-error
// distribution.
type Metrics struct {
	// Registry backs every metric below; expose it via WritePrometheus,
	// WriteJSONL or Handler.
	Registry *Registry

	decisions   *CounterVec // trigger
	misses      *Counter
	demotions   *CounterVec // node, cpu
	demotedLoss *Histogram
	budget      *Gauge
	headroom    *Gauge
	freq        *GaugeVec   // node, cpu
	volt        *GaugeVec   // node, cpu
	residency   *CounterVec // node, cpu, mhz
	idle        *CounterVec // node, cpu
	predErr     *Histogram
	predLoss    *Histogram
	sysPower    *Gauge
	cpuPower    *Gauge
}

// PredictionErrorBuckets are the |relative IPC error| bounds, spanning
// the sub-1% accuracy Table 2 reports through gross mispredictions.
var PredictionErrorBuckets = []float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50}

// LossBuckets are the predicted-performance-loss bounds; the default
// ε = 5% sits mid-range.
var LossBuckets = []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50}

// NewMetrics builds a Metrics sink over its own fresh registry.
func NewMetrics() *Metrics { return NewMetricsInto(NewRegistry()) }

// NewMetricsInto builds a Metrics sink aggregating into r, so several
// producers (scheduler, driver, coordinator) can share one exposition.
func NewMetricsInto(r *Registry) *Metrics {
	return &Metrics{
		Registry: r,
		decisions: r.Counter("fvsst_decisions_total",
			"Scheduling passes by trigger.", "trigger"),
		misses: r.Counter("fvsst_budget_misses_total",
			"Passes where even the frequency floor exceeded the budget.").With(),
		demotions: r.Counter("fvsst_demotions_total",
			"Step-2 single-step frequency reductions.", "node", "cpu"),
		demotedLoss: r.Histogram("fvsst_demotion_predicted_loss",
			"Predicted performance loss of each Step-2 reduction.", LossBuckets).With(),
		budget: r.Gauge("fvsst_budget_watts",
			"Current processor power budget.").With(),
		headroom: r.Gauge("fvsst_budget_headroom_watts",
			"Budget minus assigned table power after the last pass.").With(),
		freq: r.Gauge("fvsst_cpu_frequency_mhz",
			"Assigned frequency after the last pass.", "node", "cpu"),
		volt: r.Gauge("fvsst_cpu_voltage_volts",
			"Assigned Step-3 voltage after the last pass.", "node", "cpu"),
		residency: r.Counter("fvsst_cpu_frequency_decisions_total",
			"Decisions assigning each frequency, per CPU (time-at-frequency).", "node", "cpu", "mhz"),
		idle: r.Counter("fvsst_cpu_idle_decisions_total",
			"Decisions that saw the CPU idle.", "node", "cpu"),
		predErr: r.Histogram("fvsst_prediction_abs_error",
			"Absolute relative IPC prediction error, observed one period later.", PredictionErrorBuckets).With(),
		predLoss: r.Histogram("fvsst_assignment_predicted_loss",
			"Predicted performance loss of each non-idle assignment.", LossBuckets).With(),
		sysPower: r.Gauge("machine_system_power_watts",
			"True total system power this quantum.").With(),
		cpuPower: r.Gauge("machine_cpu_power_watts",
			"Aggregate processor power this quantum.").With(),
	}
}

// Emit aggregates one event.
func (m *Metrics) Emit(e Event) {
	switch e.Type {
	case EventSchedule:
		m.decisions.With(e.Trigger).Inc()
		if e.BudgetMissed {
			m.misses.Inc()
		}
		m.budget.Set(e.BudgetW)
		m.headroom.Set(e.HeadroomW)
		for _, c := range e.CPUs {
			node, cpu := nodeLabel(c.Node, e.Node), strconv.Itoa(c.CPU)
			m.freq.With(node, cpu).Set(c.ActualMHz)
			m.volt.With(node, cpu).Set(c.VoltageV)
			m.residency.With(node, cpu, formatFloat(c.ActualMHz)).Inc()
			if c.Idle {
				m.idle.With(node, cpu).Inc()
			} else {
				m.predLoss.Observe(c.PredictedLoss)
			}
			if c.IPCErrorValid {
				err := c.IPCError
				if err < 0 {
					err = -err
				}
				m.predErr.Observe(err)
			}
		}
		for _, d := range e.Demotions {
			m.demotions.With(nodeLabel(d.Node, e.Node), strconv.Itoa(d.CPU)).Inc()
			m.demotedLoss.Observe(d.PredictedLoss)
		}
	case EventQuantum:
		if e.SystemPowerW > 0 {
			m.sysPower.Set(e.SystemPowerW)
		}
		if e.CPUPowerW > 0 {
			m.cpuPower.Set(e.CPUPowerW)
		}
		if e.BudgetW > 0 {
			m.budget.Set(e.BudgetW)
		}
	}
}

// nodeLabel prefers the per-CPU node name, falling back to the event's.
func nodeLabel(cpuNode, eventNode string) string {
	if cpuNode != "" {
		return cpuNode
	}
	return eventNode
}
