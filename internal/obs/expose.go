package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// SeriesSnapshot is one labelled series frozen at snapshot time.
type SeriesSnapshot struct {
	LabelValues []string
	// Value carries counter/gauge state.
	Value float64
	// Histogram state: cumulative counts at the family's finite bounds.
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// FamilySnapshot is one metric family frozen at snapshot time.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []string
	Bounds []float64
	Series []SeriesSnapshot
}

// Snapshot returns a consistent-enough copy of every family for export:
// families and series appear in declaration order, each series is read
// under its own lock.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Kind:   f.kind,
			Labels: append([]string(nil), f.labels...),
			Bounds: append([]float64(nil), f.bounds...),
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		byKey := make(map[string]*series, len(keys))
		for k, s := range f.series {
			byKey[k] = s
		}
		f.mu.Unlock()
		for _, k := range keys {
			s := byKey[k]
			s.mu.Lock()
			ss := SeriesSnapshot{LabelValues: append([]string(nil), s.labelValues...)}
			if s.hist != nil {
				ss.Cumulative = s.hist.Cumulative()
				ss.Sum = s.hist.Sum()
				ss.Count = s.hist.Count()
			} else {
				ss.Value = s.val
			}
			s.mu.Unlock()
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP line per the 0.0.4 exposition format:
// backslash and newline only — quotes stay literal on HELP lines.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labelPairs renders {k="v",...}; extra appends one more pair (used for
// the histogram le label). Returns "" for no labels.
func labelPairs(names, values []string, extraName, extraValue string) string {
	var parts []string
	for i, n := range names {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, n, escapeLabel(values[i])))
	}
	if extraName != "" {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, extraName, escapeLabel(extraValue)))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			switch f.Kind {
			case KindHistogram:
				for i, bound := range f.Bounds {
					lp := labelPairs(f.Labels, s.LabelValues, "le", formatFloat(bound))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, lp, s.Cumulative[i]); err != nil {
						return err
					}
				}
				lp := labelPairs(f.Labels, s.LabelValues, "le", "+Inf")
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, lp, s.Count); err != nil {
					return err
				}
				lp = labelPairs(f.Labels, s.LabelValues, "", "")
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, lp, formatFloat(s.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, lp, s.Count); err != nil {
					return err
				}
			default:
				lp := labelPairs(f.Labels, s.LabelValues, "", "")
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, lp, formatFloat(s.Value)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// jsonlSeries is the one-line-per-series JSONL snapshot schema.
type jsonlSeries struct {
	Name    string            `json:"name"`
	Kind    Kind              `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []jsonlBucket     `json:"buckets,omitempty"`
}

type jsonlBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// WriteJSONL renders the registry as one JSON object per series per line
// — the machine-readable sibling of WritePrometheus for post-run diffing
// without a Prometheus parser.
func (r *Registry) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, f := range r.Snapshot() {
		for _, s := range f.Series {
			line := jsonlSeries{Name: f.Name, Kind: f.Kind}
			if len(f.Labels) > 0 {
				line.Labels = make(map[string]string, len(f.Labels))
				for i, n := range f.Labels {
					line.Labels[n] = s.LabelValues[i]
				}
			}
			if f.Kind == KindHistogram {
				count, sum := s.Count, s.Sum
				line.Count, line.Sum = &count, &sum
				for i, bound := range f.Bounds {
					line.Buckets = append(line.Buckets, jsonlBucket{LE: bound, Count: s.Cumulative[i]})
				}
			} else {
				v := s.Value
				line.Value = &v
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves the registry over HTTP in the Prometheus text format,
// for a live /metrics endpoint a collector can scrape mid-run.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The response writer owns delivery failures; nothing to do here.
		_ = r.WritePrometheus(w)
	})
}
