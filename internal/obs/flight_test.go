package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestFlightRecorderRingWrap(t *testing.T) {
	f := NewFlightRecorder(4, 3)
	for i := 0; i < 10; i++ {
		f.Emit(Event{Type: EventQuantum, At: float64(i), Node: "n0", CPUPowerW: float64(100 + i)})
	}
	snap := f.Snapshot()
	if snap.TotalEvents != 10 {
		t.Errorf("TotalEvents = %d, want 10", snap.TotalEvents)
	}
	if len(snap.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap.Events))
	}
	for i, e := range snap.Events {
		if want := float64(6 + i); e.At != want {
			t.Errorf("event %d at %v, want %v (oldest-first)", i, e.At, want)
		}
	}
	if len(snap.Series) != 1 {
		t.Fatalf("series = %d, want 1 (power only)", len(snap.Series))
	}
	s := snap.Series[0]
	if s.Name != "power_w:n0" || s.Total != 10 || len(s.Points) != 3 {
		t.Fatalf("series %q total %d points %d", s.Name, s.Total, len(s.Points))
	}
	if s.Points[0][0] != 7 || s.Points[2][0] != 9 {
		t.Errorf("points out of order: %v", s.Points)
	}
}

func TestFlightRecorderSeriesRouting(t *testing.T) {
	f := NewFlightRecorder(0, 0)
	f.Emit(Event{Type: EventSchedule, At: 1, Trigger: "timer", BudgetW: 300, ChargedW: 280,
		Demotions: []DemotionTrace{{CPU: 0}, {CPU: 1}}})
	f.Emit(Event{Type: EventSchedule, At: 2, Trigger: "timer", BudgetW: 300, TablePowerW: 250})
	f.Emit(Event{Type: EventSpan, At: 1, PassID: 1, Span: SpanPass, DurS: 0.004})
	f.Emit(Event{Type: EventSpan, At: 1, PassID: 1, Span: SpanStepTwo, Parent: SpanPass, DurS: 0.001})
	f.Emit(Event{Type: EventQuantum, At: 1.5, Node: "a", CPUPowerW: 90})
	f.Emit(Event{Type: EventQuantum, At: 1.5, Node: "b", CPUPowerW: 80})

	snap := f.Snapshot()
	got := map[string]FlightSeries{}
	for _, s := range snap.Series {
		got[s.Name] = s
	}
	if s := got["budget_w"]; s.Total != 2 || s.Points[0][1] != 300 {
		t.Errorf("budget_w = %+v", s)
	}
	// Charged falls back to table power when ChargedW is unset.
	if s := got["charged_w"]; s.Total != 2 || s.Points[0][1] != 280 || s.Points[1][1] != 250 {
		t.Errorf("charged_w = %+v", s)
	}
	if s := got["demotions"]; s.Points[0][1] != 2 || s.Points[1][1] != 0 {
		t.Errorf("demotions = %+v", s)
	}
	// Only the pass root feeds the latency series.
	if s := got["pass_latency_s"]; s.Total != 1 || s.Points[0][1] != 0.004 {
		t.Errorf("pass_latency_s = %+v", s)
	}
	if _, ok := got["power_w:a"]; !ok {
		t.Errorf("missing power series: %v", snap.Series)
	}

	var buf bytes.Buffer
	if err := f.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back FlightSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if back.TotalEvents != snap.TotalEvents || len(back.Events) != len(snap.Events) {
		t.Errorf("dump round-trip lost events: %d/%d", back.TotalEvents, len(back.Events))
	}
}

// TestFlightRecorderSteadyStateAllocs pins the flight recorder's always-on
// guarantee: after warm-up (rings full, node keys seen) Emit allocates
// nothing.
func TestFlightRecorderSteadyStateAllocs(t *testing.T) {
	f := NewFlightRecorder(8, 8)
	quantum := Event{Type: EventQuantum, At: 1, Node: "n0", CPUPowerW: 100}
	sched := Event{Type: EventSchedule, At: 1, Trigger: "timer", BudgetW: 300, ChargedW: 290}
	span := Event{Type: EventSpan, At: 1, PassID: 1, Span: SpanPass, DurS: 0.001}
	for i := 0; i < 32; i++ { // warm up: fill every ring, create the node series
		f.Emit(quantum)
		f.Emit(sched)
		f.Emit(span)
	}
	allocs := testing.AllocsPerRun(200, func() {
		f.Emit(quantum)
		f.Emit(sched)
		f.Emit(span)
	})
	if allocs != 0 {
		t.Errorf("steady-state Emit allocates %v times per cycle, want 0", allocs)
	}
}
