package obs

import "io"

// ReadDecisions parses a JSONL trace stream and returns its scheduling
// passes (EventSchedule) in recorded order, dropping every other event
// kind. It is the reader side of the counterfactual replay harness: a
// pass whose CPU traces carry their raw observations (see CPUTrace.Obs)
// can be re-decided from scratch under different policy knobs.
func ReadDecisions(r io.Reader) ([]Event, error) {
	var passes []Event
	keep := filterSink{&passes}
	if _, err := ReplayJSONL(r, keep); err != nil {
		return nil, err
	}
	return passes, nil
}

type filterSink struct{ passes *[]Event }

func (s filterSink) Emit(e Event) {
	if e.Type == EventSchedule {
		*s.passes = append(*s.passes, e)
	}
}

// Replayable reports whether a scheduling pass carries enough recorded
// input to re-run Steps 1–3 exactly: every non-idle CPU either has its
// raw observation window or was recorded as unobserved (no prediction
// fields). Passes from traces written before observation recording
// return false and replay harnesses must skip them.
func Replayable(e Event) bool {
	if e.Type != EventSchedule {
		return false
	}
	for _, ct := range e.CPUs {
		if !ct.Idle && ct.Obs == nil && (ct.PredictedIPC != 0 || ct.PredictedLoss != 0) {
			return false
		}
	}
	return true
}
