package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Sink receives trace events. Implementations must be safe for concurrent
// Emit calls; producers treat a nil Sink as "tracing off".
type Sink interface {
	Emit(e Event)
}

// NopSink discards every event — the explicit spelling of the nil-sink
// default for callers that want a non-nil Sink value.
type NopSink struct{}

// Emit discards the event.
func (NopSink) Emit(Event) {}

// Tee fans every event out to all the given sinks, skipping nils. It
// collapses to NopSink for an empty list and to the sink itself for a
// single one, so producers pay nothing for the indirection they don't use.
func Tee(sinks ...Sink) Sink {
	kept := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return NopSink{}
	case 1:
		return kept[0]
	}
	return kept
}

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Buffer is an in-memory sink that retains every event, for tests and
// programmatic post-run analysis.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (b *Buffer) Emit(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = append(b.events, e)
}

// Events returns a copy of everything emitted so far.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Count returns how many events match the type and trigger; either
// selector may be empty to match everything.
func (b *Buffer) Count(typ, trigger string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.events {
		if (typ == "" || e.Type == typ) && (trigger == "" || e.Trigger == trigger) {
			n++
		}
	}
	return n
}

// JSONLWriter is a sink that streams events to w as one JSON object per
// line. Writes are buffered; call Close to flush. The first write or
// encode error sticks and suppresses further output — simulation loops
// should not die because a trace disk filled, so the error is surfaced
// through Close/Err instead of panicking mid-run.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLWriter wraps w; the caller retains ownership of any underlying
// file and closes it after Close.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Emit writes the event as one JSON line.
func (j *JSONLWriter) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
}

// Err returns the sticky error, if any.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes the buffer and returns the sticky error.
func (j *JSONLWriter) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}
