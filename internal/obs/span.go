package obs

// SpanEvent builds one causal span event. at is the pass's simulated
// epoch time, passID its pass correlation ID, node the emitting (or
// targeted) cluster node, name/parent the span's position in the
// per-pass tree, and durS the measured wall-clock duration in seconds.
//
// Producers must emit spans only behind their `sink != nil` guard: span
// construction allocates the event's JSON rendering downstream, and the
// no-sink hot path's zero-allocation guarantee (TestScheduleZeroAlloc,
// BENCH_obs.json) covers the guard, not the emission.
func SpanEvent(at float64, passID uint64, node, name, parent string, durS float64) Event {
	return Event{
		Type:   EventSpan,
		At:     at,
		Node:   node,
		PassID: passID,
		Span:   name,
		Parent: parent,
		DurS:   durS,
	}
}

// RPCSpanEvent builds one rpc:* span with the per-node latency
// breakdown: queueS from pass start to the request's first send, wireS
// the measured round-trip minus the agent's reported service time, and
// applyS the agent-side service (for actuations: apply) time.
func RPCSpanEvent(at float64, passID uint64, node, name string, durS, queueS, wireS, applyS float64) Event {
	e := SpanEvent(at, passID, node, name, SpanPass, durS)
	e.QueueS = queueS
	e.WireS = wireS
	e.ApplyS = applyS
	return e
}
