package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter", "kind")
	c.With("a").Add(2)
	c.With("a").Inc()
	c.With("b").Inc()
	if got := c.With("a").Value(); got != 3 {
		t.Errorf("counter a = %v", got)
	}
	g := r.Gauge("g", "a gauge")
	g.With().Set(5)
	g.With().Add(-2)
	if got := g.With().Value(); got != 3 {
		t.Errorf("gauge = %v", got)
	}
	h := r.Histogram("h", "a histogram", []float64{1, 10})
	h.With().Observe(0.5)
	h.With().Observe(5)
	h.With().Observe(50)
	if got := h.With().Count(); got != 3 {
		t.Errorf("histogram count = %v", got)
	}
}

func TestRegistryReRegistration(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x", "l").With("v").Inc()
	// Same shape: fetches the existing family.
	if got := r.Counter("x_total", "x", "l").With("v").Value(); got != 1 {
		t.Errorf("re-registered counter = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("kind collision did not panic")
		}
	}()
	r.Gauge("x_total", "x", "l")
}

func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("y_total", "y", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("label arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n", "w")
	h := r.Histogram("d", "d", []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%2))
			for i := 0; i < 1000; i++ {
				c.With(lbl).Inc()
				h.With().Observe(float64(i % 2))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.With("a").Value() + c.With("b").Value(); got != 8000 {
		t.Errorf("total = %v, want 8000", got)
	}
	if got := h.With().Count(); got != 8000 {
		t.Errorf("observations = %v, want 8000", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("fvsst_decisions_total", "Passes by trigger.", "trigger").With("timer").Add(42)
	r.Gauge("fvsst_budget_watts", "Budget.").With().Set(294)
	h := r.Histogram("err", "Error.", []float64{0.01, 0.1})
	h.With().Observe(0.005)
	h.With().Observe(0.05)
	h.With().Observe(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP fvsst_decisions_total Passes by trigger.
# TYPE fvsst_decisions_total counter
fvsst_decisions_total{trigger="timer"} 42
# HELP fvsst_budget_watts Budget.
# TYPE fvsst_budget_watts gauge
fvsst_budget_watts 294
# HELP err Error.
# TYPE err histogram
err_bucket{le="0.01"} 1
err_bucket{le="0.1"} 2
err_bucket{le="+Inf"} 3
err_sum 1.055
err_count 3
`
	if sb.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", "l").With(`q"v`).Add(7)
	r.Histogram("b", "", []float64{1}).With().Observe(2)
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	lines := 0
	for sc.Scan() {
		lines++
		var m map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d unparseable: %v", lines, err)
		}
		if m["name"] == "a_total" {
			if m["value"].(float64) != 7 {
				t.Errorf("a_total = %v", m["value"])
			}
			if m["labels"].(map[string]interface{})["l"] != `q"v` {
				t.Errorf("labels = %v", m["labels"])
			}
		}
	}
	if lines != 2 {
		t.Errorf("lines = %d, want 2", lines)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "").With().Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(string(body), "served_total 1") {
		t.Errorf("body:\n%s", body)
	}
}
