package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Ledger is a Sink that integrates a trace into the run's energy and
// compliance account: per-node and total Joules (power integrated over
// simulated time), budget and charged-power integrals, budget-overshoot
// seconds, Step-2 demotion counts, the online prediction-error summary,
// and (from span events) wall-clock pass-latency percentiles.
//
// Everything except the latency section derives from simulated
// timestamps and simulated power, so for a fixed seed the summary is
// byte-identical across runs — the property `experiments report` and
// the report-smoke CI job pin. The latency section is wall-clock and
// excluded from deterministic comparisons.
type Ledger struct {
	mu    sync.Mutex
	nodes map[string]*nodeAcct

	// Budget/charged integration between schedule passes.
	schedSeen            bool
	lastSchedAt          float64
	lastBudgetW          float64
	lastChargedW         float64
	budgetJ, chargedJ    float64
	overshootS           float64
	overshootJ           float64
	peakOvershootW       float64
	passes, missedPasses int
	triggers             map[string]int
	demotions            int

	// Prediction accuracy (|relative IPC error|, one period late).
	predCount           int
	predAbsSum, predMax float64

	// Wall-clock pass latency from "pass" spans, capped.
	passDur []float64

	// Serving accounting: the latest cumulative serve event per
	// (node, class), folded into per-class totals at Summary time.
	serve map[serveKey]Event
}

type serveKey struct {
	node, class string
}

// maxLatencySamples bounds the retained pass-latency samples; beyond it
// the percentiles describe the first window of the run, which is enough
// for the bounded-pass-latency evidence without unbounded growth.
const maxLatencySamples = 1 << 16

type nodeAcct struct {
	seen            bool
	firstAt, lastAt float64
	lastPowerW      float64
	joules          float64
	peakW           float64
	sumW            float64
	samples         int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{nodes: make(map[string]*nodeAcct), triggers: make(map[string]int)}
}

// Emit folds one event into the account.
func (l *Ledger) Emit(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch e.Type {
	case EventQuantum:
		n, ok := l.nodes[e.Node]
		if !ok {
			n = &nodeAcct{}
			l.nodes[e.Node] = n
		}
		p := e.CPUPowerW
		if n.seen {
			if dt := e.At - n.lastAt; dt > 0 {
				// Right-rectangle rule on the previous sample: the power
				// reading held since the last quantum boundary.
				n.joules += n.lastPowerW * dt
			}
		} else {
			n.seen = true
			n.firstAt = e.At
		}
		n.lastAt = e.At
		n.lastPowerW = p
		if p > n.peakW {
			n.peakW = p
		}
		n.sumW += p
		n.samples++
	case EventSchedule:
		charged := e.ChargedW
		if charged == 0 {
			charged = e.TablePowerW
		}
		if l.schedSeen {
			if dt := e.At - l.lastSchedAt; dt > 0 {
				l.budgetJ += l.lastBudgetW * dt
				l.chargedJ += l.lastChargedW * dt
				if over := l.lastChargedW - l.lastBudgetW; over > 0 {
					l.overshootS += dt
					l.overshootJ += over * dt
				}
			}
		}
		l.schedSeen = true
		l.lastSchedAt = e.At
		l.lastBudgetW = e.BudgetW
		l.lastChargedW = charged
		if over := charged - e.BudgetW; over > l.peakOvershootW {
			l.peakOvershootW = over
		}
		l.passes++
		l.triggers[e.Trigger]++
		if e.BudgetMissed {
			l.missedPasses++
		}
		l.demotions += len(e.Demotions)
		for _, c := range e.CPUs {
			if !c.IPCErrorValid {
				continue
			}
			err := c.IPCError
			if err < 0 {
				err = -err
			}
			l.predCount++
			l.predAbsSum += err
			if err > l.predMax {
				l.predMax = err
			}
		}
	case EventServe:
		if l.serve == nil {
			l.serve = make(map[serveKey]Event)
		}
		k := serveKey{e.Node, e.Class}
		if prev, ok := l.serve[k]; !ok || e.At >= prev.At {
			l.serve[k] = e
		}
	case EventSpan:
		if e.Span == SpanPass && len(l.passDur) < maxLatencySamples {
			l.passDur = append(l.passDur, e.DurS)
		}
	}
}

// NodeEnergy is one node's row of the energy section.
type NodeEnergy struct {
	Node    string  `json:"node"`
	Joules  float64 `json:"joules"`
	Seconds float64 `json:"seconds"`
	AvgW    float64 `json:"avg_w"`
	PeakW   float64 `json:"peak_w"`
}

// TriggerCount is one trigger's pass count.
type TriggerCount struct {
	Trigger string `json:"trigger"`
	Passes  int    `json:"passes"`
}

// LatencySummary is the wall-clock pass-latency section. Nondeterministic
// by nature; omitted from deterministic renderings.
type LatencySummary struct {
	Passes int     `json:"passes"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// ServeClassTotals is one request class's row of the serving section,
// summed over every node's latest cumulative serve event. P99S is the
// worst per-node p99 (quantiles cannot be summed across nodes).
// Attainment is SLOOk/(Completed+TimedOut): timed-out requests were
// admitted and count against the SLO; rejected/dropped requests are
// admission-control outcomes reported separately.
type ServeClassTotals struct {
	Class      string  `json:"class"`
	Offered    uint64  `json:"offered"`
	Admitted   uint64  `json:"admitted"`
	Rejected   uint64  `json:"rejected,omitempty"`
	Dropped    uint64  `json:"dropped,omitempty"`
	TimedOut   uint64  `json:"timed_out,omitempty"`
	Completed  uint64  `json:"completed"`
	SLOOk      uint64  `json:"slo_ok"`
	Attainment float64 `json:"attainment"`
	QueueLen   int     `json:"queue_len,omitempty"`
	InService  int     `json:"in_service,omitempty"`
	P99S       float64 `json:"p99_s"`
}

// LedgerSummary is the frozen account, JSON-renderable. Latency is nil
// when the latency section is deselected or no pass spans were seen.
type LedgerSummary struct {
	Nodes            []NodeEnergy    `json:"nodes,omitempty"`
	TotalJoules      float64         `json:"total_joules"`
	BudgetJoules     float64         `json:"budget_joules"`
	ChargedJoules    float64         `json:"charged_joules"`
	OvershootSeconds float64         `json:"overshoot_seconds"`
	OvershootJoules  float64         `json:"overshoot_joules"`
	PeakOvershootW   float64         `json:"peak_overshoot_w"`
	Passes           int             `json:"passes"`
	Triggers         []TriggerCount  `json:"triggers,omitempty"`
	MissedPasses     int             `json:"missed_passes"`
	Demotions        int             `json:"demotions"`
	PredSamples      int             `json:"pred_samples"`
	PredMeanAbsErr   float64         `json:"pred_mean_abs_err"`
	PredMaxAbsErr    float64         `json:"pred_max_abs_err"`
	Latency          *LatencySummary `json:"latency,omitempty"`
	// Serving rows, class-sorted; nil when the trace has no serve events
	// or the section is deselected. Fully simulated-time, so included in
	// deterministic comparisons.
	Serving []ServeClassTotals `json:"serving,omitempty"`
}

// Summary freezes the account. Node rows are name-sorted; the unnamed
// single-machine key renders as "(machine)". The total sums named nodes
// when any exist (the unnamed key is then an aggregate duplicate), else
// the unnamed row.
func (l *Ledger) Summary() LedgerSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LedgerSummary{
		BudgetJoules:     l.budgetJ,
		ChargedJoules:    l.chargedJ,
		OvershootSeconds: l.overshootS,
		OvershootJoules:  l.overshootJ,
		PeakOvershootW:   l.peakOvershootW,
		Passes:           l.passes,
		MissedPasses:     l.missedPasses,
		Demotions:        l.demotions,
		PredSamples:      l.predCount,
		PredMaxAbsErr:    l.predMax,
	}
	if l.predCount > 0 {
		s.PredMeanAbsErr = l.predAbsSum / float64(l.predCount)
	}
	names := make([]string, 0, len(l.nodes))
	named := false
	for n := range l.nodes {
		names = append(names, n)
		if n != "" {
			named = true
		}
	}
	sort.Strings(names)
	for _, name := range names {
		n := l.nodes[name]
		row := NodeEnergy{
			Node:    name,
			Joules:  n.joules,
			Seconds: n.lastAt - n.firstAt,
			PeakW:   n.peakW,
		}
		if name == "" {
			row.Node = "(machine)"
		}
		if n.samples > 0 {
			row.AvgW = n.sumW / float64(n.samples)
		}
		s.Nodes = append(s.Nodes, row)
		if name != "" || !named {
			s.TotalJoules += n.joules
		}
	}
	for t, c := range l.triggers {
		s.Triggers = append(s.Triggers, TriggerCount{Trigger: t, Passes: c})
	}
	sort.Slice(s.Triggers, func(i, j int) bool { return s.Triggers[i].Trigger < s.Triggers[j].Trigger })
	if len(l.serve) > 0 {
		byClass := make(map[string]*ServeClassTotals)
		for k, e := range l.serve {
			row, ok := byClass[k.class]
			if !ok {
				row = &ServeClassTotals{Class: k.class}
				byClass[k.class] = row
			}
			row.Offered += e.Offered
			row.Admitted += e.Admitted
			row.Rejected += e.Rejected
			row.Dropped += e.Dropped
			row.TimedOut += e.TimedOut
			row.Completed += e.Completed
			row.SLOOk += e.SLOOk
			row.QueueLen += e.QueueLen
			row.InService += e.InService
			if e.P99S > row.P99S {
				row.P99S = e.P99S
			}
		}
		for _, row := range byClass {
			if resolved := row.Completed + row.TimedOut; resolved > 0 {
				row.Attainment = float64(row.SLOOk) / float64(resolved)
			}
			s.Serving = append(s.Serving, *row)
		}
		sort.Slice(s.Serving, func(i, j int) bool { return s.Serving[i].Class < s.Serving[j].Class })
	}
	if len(l.passDur) > 0 {
		d := append([]float64(nil), l.passDur...)
		sort.Float64s(d)
		q := func(p float64) float64 {
			i := int(p*float64(len(d))+0.5) - 1
			if i < 0 {
				i = 0
			}
			if i >= len(d) {
				i = len(d) - 1
			}
			return d[i] * 1e3
		}
		s.Latency = &LatencySummary{
			Passes: len(d),
			P50Ms:  q(0.50),
			P95Ms:  q(0.95),
			P99Ms:  q(0.99),
			MaxMs:  d[len(d)-1] * 1e3,
		}
	}
	return s
}

// Report sections, for LedgerSummary.WriteText and the `experiments
// report -sections` flag.
const (
	SectionEnergy     = "energy"
	SectionCompliance = "compliance"
	SectionPrediction = "prediction"
	// SectionServing is the request-latency/SLO account from serve events
	// (simulated time, deterministic). Distinct from SectionLatency, which
	// reports *wall-clock* scheduling-pass latency.
	SectionServing = "serving"
	SectionLatency = "latency"
)

// AllSections lists every report section in render order.
var AllSections = []string{SectionEnergy, SectionCompliance, SectionPrediction, SectionServing, SectionLatency}

// ParseSections parses a comma-separated section list ("all" or "" for
// everything), preserving render order and rejecting unknown names.
func ParseSections(spec string) ([]string, error) {
	if spec == "" || spec == "all" {
		return AllSections, nil
	}
	want := make(map[string]bool)
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimSpace(s)
		ok := false
		for _, known := range AllSections {
			if s == known {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("obs: unknown report section %q (have %s)", s, strings.Join(AllSections, ", "))
		}
		want[s] = true
	}
	var out []string
	for _, s := range AllSections {
		if want[s] {
			out = append(out, s)
		}
	}
	return out, nil
}

// Filter returns a copy restricted to the given sections: deselecting
// latency nils the Latency pointer so both the text and JSON renderings
// stay deterministic.
func (s LedgerSummary) Filter(sections []string) LedgerSummary {
	has := func(name string) bool {
		for _, x := range sections {
			if x == name {
				return true
			}
		}
		return false
	}
	out := s
	if !has(SectionEnergy) {
		out.Nodes = nil
		out.TotalJoules, out.BudgetJoules, out.ChargedJoules = 0, 0, 0
	}
	if !has(SectionServing) {
		out.Serving = nil
	}
	if !has(SectionLatency) {
		out.Latency = nil
	}
	return out
}

// WriteText renders the selected sections as a fixed-precision text
// report. All fixed-precision simulated quantities, so equal accounts
// render equal bytes.
func (s LedgerSummary) WriteText(w io.Writer, sections []string) error {
	bw := bufio.NewWriter(w)
	for _, sec := range sections {
		switch sec {
		case SectionEnergy:
			fmt.Fprintf(bw, "energy\n")
			for _, n := range s.Nodes {
				fmt.Fprintf(bw, "  %-12s %12.3f J over %8.3f s  avg %8.2f W  peak %8.2f W\n",
					n.Node, n.Joules, n.Seconds, n.AvgW, n.PeakW)
			}
			fmt.Fprintf(bw, "  %-12s %12.3f J  (budget integral %.3f J, charged integral %.3f J)\n",
				"total", s.TotalJoules, s.BudgetJoules, s.ChargedJoules)
		case SectionCompliance:
			fmt.Fprintf(bw, "compliance\n")
			fmt.Fprintf(bw, "  passes %d (missed-budget %d)", s.Passes, s.MissedPasses)
			for _, t := range s.Triggers {
				fmt.Fprintf(bw, "  %s=%d", t.Trigger, t.Passes)
			}
			fmt.Fprintf(bw, "\n")
			fmt.Fprintf(bw, "  demotions %d\n", s.Demotions)
			fmt.Fprintf(bw, "  overshoot %.3f s, %.3f J, peak %.2f W over budget\n",
				s.OvershootSeconds, s.OvershootJoules, s.PeakOvershootW)
		case SectionPrediction:
			fmt.Fprintf(bw, "prediction\n")
			fmt.Fprintf(bw, "  samples %d  mean |err| %.4f  max |err| %.4f\n",
				s.PredSamples, s.PredMeanAbsErr, s.PredMaxAbsErr)
		case SectionServing:
			fmt.Fprintf(bw, "serving\n")
			if len(s.Serving) == 0 {
				fmt.Fprintf(bw, "  no serve events in trace\n")
			}
			for _, c := range s.Serving {
				fmt.Fprintf(bw, "  %-12s offered %d  admitted %d  completed %d  slo-ok %d (%.2f%%)  rejected %d  dropped %d  timeout %d  queued %d  p99 %.4f s\n",
					c.Class, c.Offered, c.Admitted, c.Completed, c.SLOOk, 100*c.Attainment,
					c.Rejected, c.Dropped, c.TimedOut, c.QueueLen, c.P99S)
			}
		case SectionLatency:
			fmt.Fprintf(bw, "latency (wall-clock, nondeterministic)\n")
			if s.Latency == nil {
				fmt.Fprintf(bw, "  no pass spans in trace\n")
			} else {
				fmt.Fprintf(bw, "  passes %d  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  max %.3f ms\n",
					s.Latency.Passes, s.Latency.P50Ms, s.Latency.P95Ms, s.Latency.P99Ms, s.Latency.MaxMs)
			}
		}
	}
	return bw.Flush()
}

// ReplayJSONL decodes a JSONL trace stream and emits every event into
// the sink, returning the event count. Lines that do not decode fail
// the replay — a truncated trace should be loud, not silently short
// (the binaries flush-and-close their writers on every exit path for
// exactly this reason).
func ReplayJSONL(r io.Reader, sink Sink) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return n, fmt.Errorf("obs: trace line %d: %w", n+1, err)
		}
		sink.Emit(e)
		n++
	}
	return n, sc.Err()
}
