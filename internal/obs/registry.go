package obs

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/stats"
)

// Kind classifies a metric family.
type Kind string

// The three metric kinds, matching the Prometheus TYPE vocabulary.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry holds metric families keyed by name. All operations are safe
// for concurrent use: the registry guards the family map, each family its
// series map, and each series its value, so readers (exposition) and
// writers (instrumented hot paths) never block each other for long.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram bucket bounds

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

type series struct {
	labelValues []string

	mu   sync.Mutex
	val  float64
	hist *stats.BucketHistogram
}

// register fetches or creates a family. Re-registering with the same
// shape returns the existing family; a name collision across kinds or
// label sets is a programming error and panics.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if name == "" {
		panic("obs: metric needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]*series),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// with fetches or creates the series for one label-value tuple.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q given %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	if f.kind == KindHistogram {
		s.hist = stats.MustBucketHistogram(f.bounds...)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter declares (or fetches) a counter family with the given label
// names.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// Gauge declares (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// Histogram declares (or fetches) a fixed-bucket histogram family with
// the given ascending upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs bucket bounds", name))
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, bounds)}
}

// CounterVec is a counter family; With resolves one labelled series.
type CounterVec struct{ f *family }

// With returns the counter for the label-value tuple.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{s: v.f.with(values)}
}

// Counter is a monotonically increasing series.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are a programming error.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: counter decreased by %v", delta))
	}
	c.s.mu.Lock()
	c.s.val += delta
	c.s.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.val
}

// GaugeVec is a gauge family; With resolves one labelled series.
type GaugeVec struct{ f *family }

// With returns the gauge for the label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{s: v.f.with(values)}
}

// Gauge is a series that can move both ways.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.val = v
	g.s.mu.Unlock()
}

// Add shifts the value.
func (g *Gauge) Add(delta float64) {
	g.s.mu.Lock()
	g.s.val += delta
	g.s.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.val
}

// HistogramVec is a histogram family; With resolves one labelled series.
type HistogramVec struct{ f *family }

// With returns the histogram for the label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{s: v.f.with(values)}
}

// Histogram is one labelled fixed-bucket histogram series.
type Histogram struct{ s *series }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.s.mu.Lock()
	h.s.hist.Observe(v)
	h.s.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.hist.Count()
}
