// Package obs is the scheduler observability layer: structured decision
// tracing plus a lock-safe metrics registry with Prometheus text-exposition
// and JSONL export. The paper's daemon justifies every frequency/voltage
// assignment with counter-derived predictions (Figure 3); this package
// records those justifications — which trigger fired, each processor's
// Step-1 ε-choice, every Step-2 budget demotion with its predicted loss,
// the Step-3 voltages, and the prediction error observed one period later
// — so a run can be audited decision by decision instead of eyeballed
// from a flat log.
//
// The package deliberately has no dependencies beyond the standard
// library and internal/stats, so every layer of the stack (scheduler,
// driver, cluster coordinator, binaries) can emit into it without import
// cycles. Producers hold a Sink; a nil Sink disables tracing with no
// hot-path cost beyond one pointer test.
package obs

// Event types. Producers set Type to one of these; consumers that only
// understand a subset ignore the rest.
const (
	// EventSchedule is one complete scheduling pass (Figure 3 Steps 1–3).
	EventSchedule = "schedule"
	// EventQuantum is one dispatch quantum of machine state (power draw).
	EventQuantum = "quantum"
	// EventDegrade marks a cluster node that missed enough heartbeats to
	// be charged its worst-case table power instead of scheduled.
	EventDegrade = "degrade"
	// EventRejoin marks a degraded node re-establishing its session.
	EventRejoin = "rejoin"
	// EventFailsafe marks a node agent's watchdog expiring: the agent
	// dropped every CPU to its minimum frequency on its own.
	EventFailsafe = "failsafe"
	// EventRealloc is one farm-level reallocation pass: the datacenter
	// allocator re-divided the global budget across its clusters.
	EventRealloc = "realloc"
	// EventLeaseExpire marks a cluster's budget lease running out without
	// renewal: the cluster falls back to its floor budget on its own, the
	// farm-level analogue of the node agent failsafe.
	EventLeaseExpire = "lease-expire"
	// EventServe is one serving station's cumulative per-class request
	// account at a quantum boundary (internal/serve): offered/admitted/
	// rejected/dropped/timed-out/completed/SLO-met counters plus the
	// instantaneous queue depth — the open-workload analogue of the
	// quantum power sample.
	EventServe = "serve"
	// EventSpan is one timed phase of a scheduling or reallocation pass.
	// Spans form a two-level causal tree per pass: a "pass" root plus
	// children ("grid-fill", "step1"…, "poll", "rpc:actuate"…) that share
	// the root's PassID; Parent names the enclosing span. At is simulated
	// time (the pass epoch); DurS and the RPC breakdown are wall-clock.
	EventSpan = "span"
)

// Span names emitted by the schedulers and coordinators. The per-pass
// tree is flat-encoded: every span event carries the pass's ID, so a
// trace consumer groups by (PassID, Node) and orders by name.
const (
	// SpanPass is the root span covering one whole scheduling pass.
	SpanPass = "pass"
	// SpanGridFill is the prediction-grid fill (decompose + per-frequency
	// sweep) portion of Step 1.
	SpanGridFill = "grid-fill"
	// SpanStepOne is the Step-1 ε-choice excluding the grid fill.
	SpanStepOne = "step1"
	// SpanStepTwo is the Step-2 budget fit.
	SpanStepTwo = "step2"
	// SpanStepThree is the Step-3 voltage assignment.
	SpanStepThree = "step3"
	// SpanActuate is frequency actuation (local machine or RPC fan-out).
	SpanActuate = "actuate"
	// SpanPoll is the networked coordinator's heartbeat + counter fan-out.
	SpanPoll = "poll"
	// SpanSchedule is the networked coordinator's global core pass.
	SpanSchedule = "schedule"
	// SpanRPCCounters / SpanRPCActuate are one node's RPC round-trips,
	// with the queue/wire/apply latency breakdown filled in.
	SpanRPCCounters = "rpc:counters"
	SpanRPCActuate  = "rpc:actuate"
	// SpanRPCDemand / SpanRPCGrant are the relay tier's round-trips: a
	// root's demand poll of one relay and the grant that answers it.
	SpanRPCDemand = "rpc:demand"
	SpanRPCGrant  = "rpc:grant"
	// SpanEncode / SpanDecode aggregate the wire codec's per-pass
	// encode/decode time across a coordinator's connections.
	SpanEncode = "encode"
	SpanDecode = "decode"
	// SpanDivide is the root's least-loss division of the budget across
	// relay demand curves (the hierarchical Step-2 merge).
	SpanDivide = "divide"
	// SpanAlloc is one farm-level reallocation pass.
	SpanAlloc = "alloc"
)

// Event is one structured trace record. A single flat type covers all
// event kinds — unused fields are omitted from the JSON rendering — so a
// JSONL trace file is a homogeneous, greppable stream.
type Event struct {
	// Type discriminates the event kind (EventSchedule, EventQuantum).
	Type string `json:"type"`
	// At is the simulation timestamp in seconds.
	At float64 `json:"t"`
	// Node names the emitting cluster node, empty on a single machine.
	Node string `json:"node,omitempty"`
	// PassID correlates everything one scheduling/reallocation pass
	// produced: the schedule event, its spans, and (over the wire) the
	// agent-side acknowledgements. IDs count passes from the engine clock
	// epoch — pass k fires at epoch time (k−1)·T — so the ID doubles as
	// the pass's position in simulated time. 0 means unattributed.
	PassID uint64 `json:"pass,omitempty"`

	// Span fields (EventSpan): the span name, its parent span name within
	// the same pass, and the wall-clock duration. QueueS/WireS/ApplyS are
	// the RPC latency breakdown on rpc:* spans: time queued behind the
	// pass phases before the request was sent, time on the wire (measured
	// round-trip minus the agent's reported service time), and the
	// agent-side service/apply time.
	Span   string  `json:"span,omitempty"`
	Parent string  `json:"parent,omitempty"`
	DurS   float64 `json:"dur_s,omitempty"`
	QueueS float64 `json:"queue_s,omitempty"`
	WireS  float64 `json:"wire_s,omitempty"`
	ApplyS float64 `json:"apply_s,omitempty"`

	// Schedule-pass fields.
	Trigger      string          `json:"trigger,omitempty"`
	BudgetW      float64         `json:"budget_w,omitempty"`
	TablePowerW  float64         `json:"table_power_w,omitempty"`
	HeadroomW    float64         `json:"headroom_w,omitempty"`
	BudgetMissed bool            `json:"budget_missed,omitempty"`
	CPUs         []CPUTrace      `json:"cpus,omitempty"`
	Demotions    []DemotionTrace `json:"demotions,omitempty"`

	// Quantum fields.
	SystemPowerW float64 `json:"system_power_w,omitempty"`
	CPUPowerW    float64 `json:"cpu_power_w,omitempty"`

	// Networked-cluster fields (netcluster). ChargedW is the power the
	// coordinator holds against the budget — live assignments plus the
	// worst-case reservation for degraded nodes (ReservedW). Detail
	// carries the human-readable cause on degrade/rejoin/failsafe events.
	ChargedW  float64 `json:"charged_w,omitempty"`
	ReservedW float64 `json:"reserved_w,omitempty"`
	Detail    string  `json:"detail,omitempty"`

	// Serving fields (EventServe, internal/serve): one request class's
	// cumulative counters since the station started, plus the
	// instantaneous queue depth and in-service count. Counters are
	// cumulative so a trace consumer can difference any two events of the
	// same (Node, Class) without replaying the whole stream. P99S is the
	// class's p99 latency so far in simulated seconds.
	Class     string  `json:"class,omitempty"`
	Offered   uint64  `json:"offered,omitempty"`
	Admitted  uint64  `json:"admitted,omitempty"`
	Rejected  uint64  `json:"rejected,omitempty"`
	Dropped   uint64  `json:"dropped,omitempty"`
	TimedOut  uint64  `json:"timed_out,omitempty"`
	Completed uint64  `json:"completed,omitempty"`
	SLOOk     uint64  `json:"slo_ok,omitempty"`
	QueueLen  int     `json:"queue_len,omitempty"`
	InService int     `json:"in_service,omitempty"`
	P99S      float64 `json:"p99_s,omitempty"`

	// Farm fields (internal/farm). RunwaySeconds is how long the budget
	// source can sustain the charged draw (the UPS runway); Clusters is the
	// per-cluster allocation of a reallocation pass.
	RunwaySeconds float64        `json:"runway_s,omitempty"`
	Clusters      []ClusterAlloc `json:"clusters,omitempty"`
}

// ClusterAlloc is one cluster's slice of a farm reallocation: the budget
// lease it was granted (or is still charged while unreachable), its floor,
// the demand it asked for and the loss the allocator predicts at the grant.
type ClusterAlloc struct {
	Cluster       string  `json:"cluster"`
	AllocatedW    float64 `json:"allocated_w"`
	FloorW        float64 `json:"floor_w"`
	DesiredW      float64 `json:"desired_w,omitempty"`
	PredictedLoss float64 `json:"predicted_loss,omitempty"`
	ExpiresAt     float64 `json:"expires,omitempty"`
	Unreachable   bool    `json:"unreachable,omitempty"`
}

// CPUTrace is one processor's slice of a scheduling decision: the Step-1
// ε-constrained desire, the Step-2 post-budget actual, the Step-3 voltage
// and the prediction bookkeeping.
type CPUTrace struct {
	CPU  int    `json:"cpu"`
	Node string `json:"node,omitempty"`
	Idle bool   `json:"idle,omitempty"`
	// DesiredMHz is the Step-1 ε-choice; ActualMHz what Step 2 left.
	DesiredMHz float64 `json:"desired_mhz"`
	ActualMHz  float64 `json:"actual_mhz"`
	// VoltageV is the Step-3 minimum voltage for ActualMHz.
	VoltageV float64 `json:"voltage_v"`
	// PredictedLoss is the predicted performance loss at ActualMHz vs
	// f_max; PredictedIPC the predicted IPC at ActualMHz.
	PredictedLoss float64 `json:"predicted_loss,omitempty"`
	PredictedIPC  float64 `json:"predicted_ipc,omitempty"`
	// ObservedIPC is the elapsed window's measured IPC.
	ObservedIPC float64 `json:"observed_ipc,omitempty"`
	// IPCError is the relative error of the *previous* pass's IPC
	// prediction against this window's observation ((obs−pred)/pred),
	// valid only when IPCErrorValid — the online version of Table 2.
	IPCError      float64 `json:"ipc_error,omitempty"`
	IPCErrorValid bool    `json:"ipc_error_valid,omitempty"`
	// Obs is the raw counter window Step 1 consumed for this decision,
	// recorded so the trace is replayable: a counterfactual harness can
	// re-run Steps 1–3 from identical inputs under perturbed knobs (see
	// docs/optimality.md). Nil for idle or unobserved CPUs.
	Obs *ObsTrace `json:"obs,omitempty"`
}

// ObsTrace is one CPU's raw observation window: the counter deltas and
// the exact frequency the window ran at. FreqHz is in hertz rather than
// the MHz convention of the decision fields so the JSON round trip is
// bit-exact — replay must reproduce the recorded decisions to the byte.
type ObsTrace struct {
	WindowS      float64 `json:"window_s"`
	Instructions uint64  `json:"instr"`
	Cycles       uint64  `json:"cycles"`
	HaltedCycles uint64  `json:"halted,omitempty"`
	L2Refs       uint64  `json:"l2,omitempty"`
	L3Refs       uint64  `json:"l3,omitempty"`
	MemRefs      uint64  `json:"mem,omitempty"`
	FreqHz       float64 `json:"freq_hz"`
}

// DemotionTrace is one Step-2 reduction: the budget fit lowered a
// processor one table step at the stated predicted loss versus f_max.
type DemotionTrace struct {
	CPU           int     `json:"cpu"`
	Node          string  `json:"node,omitempty"`
	FromMHz       float64 `json:"from_mhz"`
	ToMHz         float64 `json:"to_mhz"`
	PredictedLoss float64 `json:"predicted_loss"`
}
