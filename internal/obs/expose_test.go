package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPrometheusEscaping pins the 0.0.4 escaping rules: label values
// escape backslash, newline and double-quote; HELP text escapes only
// backslash and newline (quotes stay literal).
func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "help with \\ backslash, \"quotes\"\nand newline", "path").
		With("C:\\dir\n\"quoted\"").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantHelp := `# HELP esc_total help with \\ backslash, "quotes"\nand newline` + "\n"
	if !strings.Contains(out, wantHelp) {
		t.Errorf("help line wrong:\n%s", out)
	}
	wantSeries := `esc_total{path="C:\\dir\n\"quoted\""} 1` + "\n"
	if !strings.Contains(out, wantSeries) {
		t.Errorf("series line wrong:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "\r") {
			t.Errorf("raw control char leaked: %q", line)
		}
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("escaped newlines should not split lines:\n%q", out)
	}
}

// TestHandlerContentType pins the exact Prometheus 0.0.4 Content-Type.
func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").With().Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got, want := resp.Header.Get("Content-Type"), "text/plain; version=0.0.4; charset=utf-8"; got != want {
		t.Errorf("Content-Type = %q, want %q", got, want)
	}
}

// TestHistogramSnapshotConsistency hammers one histogram series from
// several writers while a reader snapshots: every snapshot must be
// internally consistent (cumulative buckets monotone, bounded by the
// count, count never regressing between snapshots). Run with -race.
func TestHistogramSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.25, 0.5, 0.75}, "node")
	const writers, perWriter = 4, 2000
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := h.With("n0")
			for i := 0; i < perWriter; i++ {
				s.Observe(float64(i%4) * 0.25)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var lastCount uint64
		for !stop.Load() {
			for _, f := range r.Snapshot() {
				if f.Name != "lat" {
					continue
				}
				for _, s := range f.Series {
					prev := uint64(0)
					for i, c := range s.Cumulative {
						if c < prev {
							t.Errorf("bucket %d regressed: %d < %d", i, c, prev)
						}
						prev = c
					}
					if prev > s.Count {
						t.Errorf("cumulative %d exceeds count %d", prev, s.Count)
					}
					if s.Count < lastCount {
						t.Errorf("count regressed: %d < %d", s.Count, lastCount)
					}
					lastCount = s.Count
				}
			}
		}
	}()
	wg.Wait()
	stop.Store(true)
	<-done
	if got := h.With("n0").Count(); got != writers*perWriter {
		t.Errorf("final count = %d, want %d", got, writers*perWriter)
	}
}
