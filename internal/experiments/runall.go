package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"
)

// Result is one experiment's outcome under RunAll: the report and its
// pre-rendered text (so deterministic byte comparison needs no further
// calls), or the error, plus the runner's wall-clock and heap-allocation
// stats for BENCH_experiments.json.
type Result struct {
	ID       string
	Report   Report
	Rendered string
	Err      error
	// WallSeconds is the experiment's wall-clock run time.
	WallSeconds float64
	// AllocBytes/Allocs are the process-wide heap-allocation deltas over
	// the run (runtime.MemStats.TotalAlloc / Mallocs). They are exact when
	// parallel = 1; under a parallel pool concurrent experiments' traffic
	// lands in whichever delta is open, so treat them as an upper bound.
	AllocBytes uint64
	Allocs     uint64
}

// RunAll executes the named experiments on a pool of `parallel` workers
// (min 1) and returns the results in input order. An unknown id yields a
// Result with Err set; execution errors land the same way — RunAll itself
// never fails.
//
// Determinism and the seeding convention: every experiment builds its
// entire world — machines, workloads, RNG streams — from Options alone.
// All randomness descends from Options.Seed through fixed offsets (a
// machine's power meter draws from Seed+1000, netcluster node i from
// Seed+i, and so on); nothing is shared mutably between experiments and
// nothing reads global RNG or wall-clock state into results. Two RunAll
// calls with equal Options and ids therefore produce byte-identical
// Rendered output for ANY worker count, including compared against the
// plain sequential loop — the property the parallel harness rests on and
// internal/experiments' determinism regression tests pin.
func RunAll(opts Options, ids []string, parallel int) []Result {
	if parallel < 1 {
		parallel = 1
	}
	results := make([]Result, len(ids))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runOne(opts, ids[i])
			}
		}()
	}
	for i := range ids {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runOne executes a single experiment with timing and allocation stats.
func runOne(opts Options, id string) Result {
	res := Result{ID: id}
	spec, ok := Lookup(id)
	if !ok {
		res.Err = fmt.Errorf("unknown experiment %q (try: experiments list)", id)
		return res
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	rep, err := spec.Run(opts)
	res.WallSeconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	res.AllocBytes = after.TotalAlloc - before.TotalAlloc
	res.Allocs = after.Mallocs - before.Mallocs
	if err != nil {
		res.Err = fmt.Errorf("%s: %w", id, err)
		return res
	}
	res.Report = rep
	res.Rendered = rep.Render()
	return res
}

// benchEntry is one experiment's row in the benchmark JSON.
type benchEntry struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	Allocs      uint64  `json:"allocs"`
	Error       string  `json:"error,omitempty"`
}

// benchFile is the BENCH_experiments.json shape.
type benchFile struct {
	Parallel    int          `json:"parallel"`
	WallSeconds float64      `json:"wall_seconds"`
	Experiments []benchEntry `json:"experiments"`
}

// WriteBenchJSON writes per-experiment wall-clock and allocation stats
// (plus the whole run's wall time) as indented JSON, the
// BENCH_experiments.json artefact of `make bench`.
func WriteBenchJSON(path string, parallel int, totalWallSeconds float64, results []Result) error {
	out := benchFile{
		Parallel:    parallel,
		WallSeconds: totalWallSeconds,
		Experiments: make([]benchEntry, len(results)),
	}
	for i, r := range results {
		e := benchEntry{ID: r.ID, WallSeconds: r.WallSeconds, AllocBytes: r.AllocBytes, Allocs: r.Allocs}
		if r.Err != nil {
			e.Error = r.Err.Error()
		}
		out.Experiments[i] = e
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
