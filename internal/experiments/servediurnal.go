package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/serve"
	"repro/internal/units"
)

// The serve-diurnal-drop study puts the request-serving subsystem under
// the paper's §2 emergency: an 8-way node serving two SLO classes of
// diurnal open-loop traffic loses most of its power budget (1120 W →
// 220 W) right across the demand peak. Two policies divide the reduced
// budget:
//
//   - fvsst with the idle signal: idle processors park at the table floor
//     (9 W) and the freed headroom lifts the busy ones — with five or six
//     CPUs parked, the serving CPUs run at 550–650 MHz inside the 220 W
//     cap;
//   - uniform: every processor pinned at the highest frequency whose
//     8-way table power fits the cap — 400 MHz (22 W) at 220 W — the
//     classic "slow everything equally" response.
//
// Both runs serve byte-identical request sequences (same streams, same
// per-station size draws), so the only difference is frequency policy.
// The CPU-bound web class is sized so its mean request meets its SLO at
// 550 MHz and above but misses it at 400 MHz: uniform misses the SLO on
// most web requests during the drop while fvsst keeps meeting it, because
// frequency scheduling concentrates the shrunken budget on the processors
// that are actually serving.

const (
	serveCPUs      = 8
	serveBudgetW   = 1120.0 // 8 × the 140 W table maximum
	serveDropW     = 220.0
	serveWebCount  = 4 // web client streams (class 0)
	serveClientCnt = 5 // web clients + one batch client
	// serveDrainSec extends the drop-window score past the budget
	// restoration: requests slowed by the drop resolve (complete or time
	// out) after it ends, and scoring only to the restoration instant
	// would silently exclude exactly the requests the drop hurt.
	serveDrainSec = 1.0
)

// serveClasses is the fixed two-class mix: latency-sensitive web requests
// with a tight SLO and a queue-wait timeout, and bulk batch requests that
// may wait but must complete.
func serveClasses() []serve.Class {
	return []serve.Class{
		// CPU-bound and frequency-sensitive: ~160 ms at 600 MHz, ~240 ms
		// at 400 MHz, against a 210 ms SLO.
		{Name: "web", Phase: serve.PhaseProfile(1.3, 0.0005), MeanInstr: 70e6, SizeCV: 0.25,
			SLO: 0.210, Timeout: 1.0, Priority: 1, QueueCap: 512},
		// Memory-bound: stall time dominates, so batch barely profits from
		// frequency and fvsst can serve it on near-floor processors.
		{Name: "batch", Phase: serve.PhaseProfile(1.1, 0.02), MeanInstr: 60e6, SizeCV: 0.5,
			SLO: 1.500, QueueCap: 512},
	}
}

// serveFeeder wires the per-client arrival streams: three diurnal bursty
// web clients and one diurnal batch client, all peaking together.
func (o Options) serveFeeder(period float64) (*serve.Feeder, error) {
	f := &serve.Feeder{}
	webSpec := fmt.Sprintf("gamma:2,cv=1.5,depth=0.5,period=%g", period)
	for cl := 0; cl < serveWebCount; cl++ {
		spec, err := serve.ParseArrivalSpec(webSpec)
		if err != nil {
			return nil, err
		}
		stm, err := spec.NewStream(o.Seed + 300 + int64(cl))
		if err != nil {
			return nil, err
		}
		f.Add(0, cl, stm)
	}
	spec, err := serve.ParseArrivalSpec(fmt.Sprintf("poisson:1,depth=0.5,period=%g", period))
	if err != nil {
		return nil, err
	}
	stm, err := spec.NewStream(o.Seed + 350)
	if err != nil {
		return nil, err
	}
	f.Add(1, serveClientCnt-1, stm)
	return f, nil
}

// ServeWindow is one class's score over the budget-drop window.
type ServeWindow struct {
	Class      string  `json:"class"`
	SLOOk      uint64  `json:"slo_ok"`
	Resolved   uint64  `json:"resolved"` // completed + timed out in the window
	Dropped    uint64  `json:"dropped,omitempty"`
	Attainment float64 `json:"attainment"`
}

// ServeDiurnalOutcome is one policy's run.
type ServeDiurnalOutcome struct {
	Policy string
	// Final is the whole-run score after draining.
	Final serve.Summary
	// Drop holds the per-class scores inside the budget-drop window, in
	// class order (web, batch).
	Drop []ServeWindow
	// Offered is the total request count presented (identical across
	// policies by construction).
	Offered uint64
	// MeanPowerW / DropPowerW are time-averaged system powers over the
	// serving horizon and the drop window.
	MeanPowerW float64
	DropPowerW float64
}

// ServeDiurnalReport compares the two policies.
type ServeDiurnalReport struct {
	PeriodSec    float64
	HorizonSec   float64
	DropStartSec float64
	DropEndSec   float64
	FVSST        ServeDiurnalOutcome
	Uniform      ServeDiurnalOutcome
}

// serveWindowDiff subtracts two cumulative class summaries.
func serveWindowDiff(a, b serve.ClassSummary) ServeWindow {
	w := ServeWindow{
		Class:    b.Class,
		SLOOk:    b.SLOOk - a.SLOOk,
		Resolved: (b.Completed + b.TimedOut) - (a.Completed + a.TimedOut),
		Dropped:  b.Dropped - a.Dropped,
	}
	if w.Resolved > 0 {
		w.Attainment = float64(w.SLOOk) / float64(w.Resolved)
	}
	return w
}

// serveDiurnalRun serves the scenario under one policy.
func (o Options) serveDiurnalRun(uniform bool, period, horizon, dropStart, dropEnd float64) (ServeDiurnalOutcome, error) {
	m, err := machine.New(o.machineConfig(serveCPUs))
	if err != nil {
		return ServeDiurnalOutcome{}, err
	}
	st, err := serve.NewStation(m, serve.Config{
		Classes: serveClasses(),
		Clients: serveClientCnt,
		Seed:    o.Seed + 17, // station seed convention: machine seed + 17
	})
	if err != nil {
		return ServeDiurnalOutcome{}, err
	}
	feeder, err := o.serveFeeder(period)
	if err != nil {
		return ServeDiurnalOutcome{}, err
	}
	budgets, err := power.NewBudgetSchedule(units.Watts(serveBudgetW),
		power.BudgetEvent{At: dropStart, Budget: units.Watts(serveDropW)},
		power.BudgetEvent{At: dropEnd, Budget: units.Watts(serveBudgetW)})
	if err != nil {
		return ServeDiurnalOutcome{}, err
	}

	var drv *fvsst.Driver
	if !uniform {
		cfg := o.schedConfig()
		cfg.UseIdleSignal = true
		s, err := fvsst.New(cfg, m, units.Watts(serveBudgetW))
		if err != nil {
			return ServeDiurnalOutcome{}, err
		}
		drv = fvsst.NewDriver(m, s)
		drv.Budgets = budgets
	}
	table := m.Config().Table
	lastFi := -1

	out := ServeDiurnalOutcome{Policy: "fvsst"}
	if uniform {
		out.Policy = "uniform"
	}
	var snapStart, snapEnd serve.Summary
	tookStart, tookEnd := false, false
	var powerSum, dropPowerSum float64
	var powerN, dropN int
	deadline := horizon + 10
	for {
		now := m.Now()
		if now >= horizon && st.Drained() {
			break
		}
		if now >= deadline {
			return ServeDiurnalOutcome{}, fmt.Errorf("experiments: %s serve run did not drain (backlog %d)", out.Policy, st.Backlog())
		}
		if now < horizon {
			feeder.DeliverUpTo(now, st)
		}
		if !tookStart && now >= dropStart {
			snapStart, tookStart = st.Scoreboard().Summarize(now), true
		}
		if !tookEnd && now >= dropEnd+serveDrainSec {
			snapEnd, tookEnd = st.Scoreboard().Summarize(now), true
		}
		st.BeforeQuantum(now)
		if uniform {
			// Pin all CPUs at the highest table frequency whose 8-way power
			// fits the current budget.
			b := budgets.At(now)
			fi := 0
			for i := 0; i < table.Len(); i++ {
				if float64(table.PowerAtIndex(i))*float64(m.NumCPUs()) <= float64(b) {
					fi = i
				} else {
					break
				}
			}
			if fi != lastFi {
				f := table.FrequencyAtIndex(fi)
				for c := 0; c < m.NumCPUs(); c++ {
					if err := m.SetFrequency(c, f); err != nil {
						return ServeDiurnalOutcome{}, err
					}
				}
				lastFi = fi
			}
			m.Step()
		} else if err := drv.Step(); err != nil {
			return ServeDiurnalOutcome{}, err
		}
		st.AfterQuantum(m.Now())
		if now < horizon {
			p := float64(m.SystemPower())
			powerSum += p
			powerN++
			if now >= dropStart && now < dropEnd {
				dropPowerSum += p
				dropN++
			}
		}
	}
	if !tookStart || !tookEnd {
		return ServeDiurnalOutcome{}, fmt.Errorf("experiments: drop window [%g,%g)+%gs drain outside horizon %g", dropStart, dropEnd, serveDrainSec, horizon)
	}
	out.Final = st.Scoreboard().Summarize(horizon)
	for ci := range out.Final.Classes {
		out.Drop = append(out.Drop, serveWindowDiff(snapStart.Classes[ci], snapEnd.Classes[ci]))
	}
	out.Offered = st.Account().Offered
	if powerN > 0 {
		out.MeanPowerW = powerSum / float64(powerN)
	}
	if dropN > 0 {
		out.DropPowerW = dropPowerSum / float64(dropN)
	}
	return out, nil
}

// ServeDiurnalDrop runs the budget-drop serving study.
func ServeDiurnalDrop(o Options) (*ServeDiurnalReport, error) {
	period := 4.0 * float64(o.Scale)
	if period < 3 {
		period = 3
	}
	horizon := 2 * period
	// The drop brackets the first demand peak (sin maximum at period/4).
	dropStart := period / 8
	dropEnd := dropStart + period/2

	fv, err := o.serveDiurnalRun(false, period, horizon, dropStart, dropEnd)
	if err != nil {
		return nil, err
	}
	un, err := o.serveDiurnalRun(true, period, horizon, dropStart, dropEnd)
	if err != nil {
		return nil, err
	}
	if fv.Offered != un.Offered {
		return nil, fmt.Errorf("experiments: traffic diverged across policies: %d vs %d offered", fv.Offered, un.Offered)
	}
	return &ServeDiurnalReport{
		PeriodSec:    period,
		HorizonSec:   horizon,
		DropStartSec: dropStart,
		DropEndSec:   dropEnd,
		FVSST:        fv,
		Uniform:      un,
	}, nil
}

// Outcomes returns the two policies in presentation order.
func (r *ServeDiurnalReport) Outcomes() []ServeDiurnalOutcome {
	return []ServeDiurnalOutcome{r.FVSST, r.Uniform}
}

// Render formats the report.
func (r *ServeDiurnalReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b,
		"Serve diurnal drop: 8-way node, 2 SLO classes, diurnal period %.1fs over %.1fs;\n"+
			"budget %.0fW, dropping to %.0fW across the demand peak t∈[%.2f,%.2f)s\n",
		r.PeriodSec, r.HorizonSec, serveBudgetW, serveDropW, r.DropStartSec, r.DropEndSec)
	for _, p := range r.Outcomes() {
		fmt.Fprintf(&b, "policy %s: offered %d, mean power %.0fW (drop window %.0fW)\n",
			p.Policy, p.Offered, p.MeanPowerW, p.DropPowerW)
		for _, w := range p.Drop {
			fmt.Fprintf(&b, "  drop+drain %-6s attainment %6.2f%% (%d/%d slo-ok, %d dropped)\n",
				w.Class, 100*w.Attainment, w.SLOOk, w.Resolved, w.Dropped)
		}
		b.WriteString(indent(p.Final.Render(), "  "))
	}
	return b.String()
}

// indent prefixes every non-empty line.
func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
