package experiments

import (
	"fmt"

	"repro/internal/memhier"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Figure7Budget summarises one budget level of the Figure 7 study.
type Figure7Budget struct {
	LimitW float64
	// MeanFreq100 and MeanFreq75 are the mean scheduled frequencies (MHz)
	// during the 100%- and 75%-intensity phases.
	MeanFreq100 float64
	MeanFreq75  float64
	// NormPerf is run throughput normalised to the 140 W run.
	NormPerf float64
}

// Figure7Report reproduces Figure 7: a synthetic benchmark alternating
// 100%- and 75%-CPU-intensity phases under 140 W, 75 W and 35 W budgets.
// At full power both phases get what they need; at 75 W (750 MHz cap) the
// high-intensity phases can no longer be scheduled without loss; at 35 W
// (500 MHz cap) both phases are pinned at the power-constrained frequency.
type Figure7Report struct {
	Budgets []Figure7Budget
}

// Figure7 runs the two-phase budget study.
func Figure7(o Options) (*Figure7Report, error) {
	h := memhier.P630()
	secs := 0.8*float64(o.Scale) + 0.3
	mk := func(name string, intensity float64) (workload.Phase, error) {
		probe, err := workload.SyntheticIntensityPhase(name, intensity, 1000, h)
		if err != nil {
			return workload.Phase{}, err
		}
		instr := workload.InstructionsForDuration(probe, h, 1e9, secs)
		return workload.SyntheticIntensityPhase(name, intensity, instr, h)
	}
	p100, err := mk("cpu100", 100)
	if err != nil {
		return nil, err
	}
	p75, err := mk("cpu75", 75)
	if err != nil {
		return nil, err
	}
	prog := workload.Program{Name: "fig7"}
	for i := 0; i < 3; i++ {
		prog.Phases = append(prog.Phases, p100, p75)
	}

	rep := &Figure7Report{}
	var base float64
	for _, lim := range Table1Budgets {
		res, trace, err := o.tracedRun(prog, budgetFor(lim))
		if err != nil {
			return nil, err
		}
		perf := 1 / res.Seconds
		if lim == 140 {
			base = perf
		}
		b := Figure7Budget{LimitW: lim, NormPerf: perf / base}
		freq := res.Recorder.Series("freq-mhz")
		inPhase := func(t float64) string {
			for _, p := range trace {
				if p.t >= t {
					return p.name
				}
			}
			return "done"
		}
		var sum100, sum75 float64
		var n100, n75 int
		for _, pt := range freq.Points {
			switch inPhase(pt.T) {
			case "cpu100":
				sum100 += pt.V
				n100++
			case "cpu75":
				sum75 += pt.V
				n75++
			}
		}
		if n100 > 0 {
			b.MeanFreq100 = sum100 / float64(n100)
		}
		if n75 > 0 {
			b.MeanFreq75 = sum75 / float64(n75)
		}
		rep.Budgets = append(rep.Budgets, b)
	}
	return rep, nil
}

// Render formats the report.
func (r *Figure7Report) Render() string {
	t := telemetry.Table{
		Title:   "Figure 7: 100%/75% two-phase benchmark under power constraints",
		Headers: []string{"Limit", "mean f (100% phase)", "mean f (75% phase)", "norm perf"},
	}
	for _, b := range r.Budgets {
		t.MustAddRow(
			fmt.Sprintf("%.0fW", b.LimitW),
			fmt.Sprintf("%.0fMHz", b.MeanFreq100),
			fmt.Sprintf("%.0fMHz", b.MeanFreq75),
			fmt.Sprintf("%.3f", b.NormPerf),
		)
	}
	return t.String()
}
