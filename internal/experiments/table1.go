package experiments

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Table1Row is one operating point with the paper's Lava-generated power
// and the value our fitted CV²f+BV² analytic model regenerates.
type Table1Row struct {
	Freq    units.Frequency
	Voltage units.Voltage
	PaperW  float64
	ModelW  float64
	RelErr  float64
}

// Table1Report regenerates the paper's Table 1 (frequencies available for
// scheduling with their peak powers) and quantifies how well the analytic
// power model of §4.4 reproduces the circuit-tool numbers.
type Table1Report struct {
	Rows       []Table1Row
	FittedC    units.Capacitance
	FittedB    float64
	WorstError float64
}

// Table1 fits the analytic model to the embedded Table 1 and evaluates it
// at every operating point.
func Table1() (*Table1Report, error) {
	tab := power.PaperTable1()
	model, err := power.FitModel(tab, power.DefaultVoltageCurve())
	if err != nil {
		return nil, err
	}
	rep := &Table1Report{FittedC: model.C, FittedB: model.B}
	for _, p := range tab.Points() {
		got := model.PowerAt(p.F, p.V)
		rel := (got.W() - p.P.W()) / p.P.W()
		if rel < 0 {
			rel = -rel
		}
		rep.Rows = append(rep.Rows, Table1Row{
			Freq:    p.F,
			Voltage: p.V,
			PaperW:  p.P.W(),
			ModelW:  got.W(),
			RelErr:  rel,
		})
		if rel > rep.WorstError {
			rep.WorstError = rel
		}
	}
	return rep, nil
}

// Render formats the report as text.
func (r *Table1Report) Render() string {
	t := telemetry.Table{
		Title:   "Table 1: frequencies available for scheduling (paper vs fitted CV²f+BV² model)",
		Headers: []string{"Frequency", "Vmin", "Paper (W)", "Model (W)", "err"},
	}
	for _, row := range r.Rows {
		t.MustAddRow(
			row.Freq.String(),
			row.Voltage.String(),
			fmt.Sprintf("%.0f", row.PaperW),
			fmt.Sprintf("%.1f", row.ModelW),
			fmt.Sprintf("%.1f%%", row.RelErr*100),
		)
	}
	return t.String() + fmt.Sprintf("fit: C=%.1fnF  B=%.2fW/V²  worst error %.1f%%\n",
		r.FittedC.F()*1e9, r.FittedB, r.WorstError*100)
}
