package experiments

import (
	"strings"
	"testing"
)

func TestAblationMaskingShowsHiddenLoss(t *testing.T) {
	rep, err := AblationMasking(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The aggregate looked fine to the scheduler...
	if rep.AggregatePredictedLoss >= rep.Epsilon {
		t.Errorf("aggregate predicted loss %.3f not under ε %.3f",
			rep.AggregatePredictedLoss, rep.Epsilon)
	}
	// ...but the frequency dropped well below max...
	if rep.ChosenMHz >= 950 {
		t.Errorf("chosen frequency %.0fMHz — no masking occurred, workload not memory-dominated", rep.ChosenMHz)
	}
	// ...and the CPU-bound job individually blows through the ε bound.
	if rep.MaskedJob != "cpu-job" {
		t.Errorf("masked job = %s, want cpu-job", rep.MaskedJob)
	}
	if rep.MaskedJobLoss <= rep.Epsilon*1.5 {
		t.Errorf("masked loss %.3f not clearly above ε %.3f", rep.MaskedJobLoss, rep.Epsilon)
	}
	// The memory-bound jobs are genuinely near-unharmed.
	for name, loss := range rep.PerJobTrueLoss {
		if strings.HasPrefix(name, "mem-job") && loss > rep.Epsilon+0.05 {
			t.Errorf("%s loss %.3f unexpectedly high", name, loss)
		}
	}
	if !strings.Contains(rep.Render(), "masked job") {
		t.Error("render incomplete")
	}
}

func TestAblationActuatorFidelity(t *testing.T) {
	rep, err := AblationActuator(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	base := rep.Rows[0]
	for _, row := range rep.Rows[1:] {
		rel := row.Seconds/base.Seconds - 1
		if rel < 0 {
			rel = -rel
		}
		// The §6 claim: throttling granularity and settling barely matter;
		// all actuators land within a few percent of each other.
		if rel > 0.05 {
			t.Errorf("%s runtime differs %.1f%% from default", row.Name, rel*100)
		}
	}
}

func TestAblationEpsilonTradeoff(t *testing.T) {
	rep, err := AblationEpsilon(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for i, row := range rep.Rows {
		// Larger ε can only reduce energy (monotone non-increasing within
		// simulation noise) and costs bounded performance.
		if i > 0 && row.NormEnergy > rep.Rows[i-1].NormEnergy+0.03 {
			t.Errorf("energy not non-increasing at ε=%.2f: %.3f after %.3f",
				row.Epsilon, row.NormEnergy, rep.Rows[i-1].NormEnergy)
		}
		if row.NormPerf < 1-row.Epsilon-0.10 {
			t.Errorf("ε=%.2f: perf %.3f lost far more than ε", row.Epsilon, row.NormPerf)
		}
		if row.NormPerf > 1.02 {
			t.Errorf("ε=%.2f: perf %.3f above the fixed run", row.Epsilon, row.NormPerf)
		}
	}
	// mcf saturates: even a small usable ε already buys a large energy cut.
	if rep.Rows[1].NormEnergy > 0.65 { // ε = 5%
		t.Errorf("ε=5%% energy %.3f, want ≤ 0.65 for saturated mcf", rep.Rows[1].NormEnergy)
	}
}
