package experiments

// Report is the common surface of every experiment's result: a rendered
// text block, matching the paper's table or figure. Concrete reports carry
// the underlying numbers too (and some implement CSVWriter).
type Report interface{ Render() string }

// Spec is one registered experiment: a stable id (the CLI argument), a
// one-line description, and the runner. The registry is the single source
// of truth — cmd/experiments derives its usage text, its `list` output and
// its input validation from it, so the two can never drift.
type Spec struct {
	ID   string
	Desc string
	Run  func(Options) (Report, error)
}

// report adapts an (r, err) pair whose concrete type implements Render.
func report[R Report](r R, err error) (Report, error) {
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Registry returns every experiment in presentation order — the order
// `all` renders: the paper's tables and figures first, then the worked
// example, the ablations, and the cluster studies.
func Registry() []Spec {
	return []Spec{
		{"table1", "Table 1: frequency/power operating points vs fitted model", func(Options) (Report, error) {
			return report(Table1())
		}},
		{"fig1", "Figure 1: performance saturation", func(o Options) (Report, error) {
			return report(Figure1(o))
		}},
		{"table2", "Table 2: predictor IPC deviation", func(o Options) (Report, error) {
			return report(Table2(o))
		}},
		{"fig4", "Figure 4: fvsst overhead", func(o Options) (Report, error) {
			return report(Figure4(o))
		}},
		{"fig5", "Figure 5: phase tracking", func(o Options) (Report, error) {
			return report(Figure5(o))
		}},
		{"fig6", "Figure 6: performance under power limits", func(o Options) (Report, error) {
			return report(Figure6(o))
		}},
		{"fig7", "Figure 7: two-phase benchmark under constraints", func(o Options) (Report, error) {
			return report(Figure7(o))
		}},
		{"table3", "Table 3: applications under constraint", func(o Options) (Report, error) {
			return report(Table3(o))
		}},
		{"fig8", "Figure 8: time-at-frequency residency", func(o Options) (Report, error) {
			return report(Figure8(o))
		}},
		{"fig9", "Figures 9+10: gap actual vs desired frequency at 75W", func(o Options) (Report, error) {
			return report(Figure9(o))
		}},
		{"worked", "§5 worked example", func(Options) (Report, error) {
			return report(WorkedExample())
		}},
		{"ab-policies", "Ablation: fvsst vs uniform/power-down/util-DVS", func(Options) (Report, error) {
			return report(AblationPolicies())
		}},
		{"ab-ideal", "Ablation: discrete ε-scan vs closed-form f_ideal", func(Options) (Report, error) {
			return report(AblationIdeal())
		}},
		{"ab-idle", "Ablation: idle detection on/off", func(o Options) (Report, error) {
			return report(AblationIdle(o))
		}},
		{"ab-masking", "Ablation: aggregation masking under multiprogramming", func(o Options) (Report, error) {
			return report(AblationMasking(o))
		}},
		{"ab-actuator", "Ablation: throttle vs ideal DVFS actuator", func(o Options) (Report, error) {
			return report(AblationActuator(o))
		}},
		{"ab-epsilon", "Ablation: ε performance/energy trade-off", func(o Options) (Report, error) {
			return report(AblationEpsilon(o))
		}},
		{"ab-exec", "Ablation: analytic vs Monte-Carlo execution model", func(o Options) (Report, error) {
			return report(AblationExecModel(o))
		}},
		{"cluster", "Cluster study: 3-tier cluster under a global cap, fvsst vs uniform", func(o Options) (Report, error) {
			return report(ClusterStudy(o))
		}},
		{"farm", "Server farm: diurnal request load, power tracking demand", func(o Options) (Report, error) {
			return report(ServerFarm(o))
		}},
		{"farm-powerfail", "Farm power-fail: supply failure onto UPS runway governor, hierarchical vs equal-split vs uniform", func(o Options) (Report, error) {
			return report(FarmPowerFail(o))
		}},
		{"serve-diurnal-drop", "Serve diurnal drop: open-loop SLO classes through a budget drop, fvsst vs uniform", func(o Options) (Report, error) {
			return report(ServeDiurnalDrop(o))
		}},
		{"serve-hotspot", "Serve hotspot: hot/cold clusters under a farm budget, hierarchical vs equal-split", func(o Options) (Report, error) {
			return report(ServeHotspot(o))
		}},
	}
}

// Lookup returns the spec for an experiment id.
func Lookup(id string) (Spec, bool) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// IDs returns every experiment id in presentation order.
func IDs() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, s := range reg {
		out[i] = s.ID
	}
	return out
}
