package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// AblationPoliciesReport compares fvsst against the §1 alternatives —
// uniform scaling, node power-down, utilisation DVS — over a budget sweep
// on a diverse 4-CPU workload (one CPU-bound, two memory-bound, one idle).
type AblationPoliciesReport struct {
	BudgetsW []float64
	// Perf[policy][budget index]: mean per-processor performance
	// normalised to full frequency (each workload weighted equally).
	Perf map[string][]float64
	// WorstLoss[policy][budget index]: worst single-processor loss.
	WorstLoss map[string][]float64
}

// AblationPolicies runs the policy comparison analytically on the fixed
// diverse-workload decomposition (the same shape the machine tests exercise
// end to end).
func AblationPolicies() (*AblationPoliciesReport, error) {
	mk := func(alpha, stallNs float64) *perfmodel.Decomposition {
		return &perfmodel.Decomposition{InvAlpha: 1 / alpha, StallSecPerInstr: stallNs * 1e-9}
	}
	in := baseline.Input{
		Decs:    []*perfmodel.Decomposition{mk(1.4, 0.1), mk(1.1, 8.44), mk(1.0, 12), nil},
		Idle:    []bool{false, false, false, true},
		Util:    []float64{1, 1, 1, 0},
		Table:   power.PaperTable1(),
		Epsilon: 0.05,
	}
	budgets := []float64{560, 420, 294, 200, 150, 100, 60}
	policies := []baseline.Policy{
		baseline.FVSST{}, baseline.Uniform{}, baseline.PowerDown{}, baseline.UtilizationDVS{},
	}
	rep := &AblationPoliciesReport{
		BudgetsW:  budgets,
		Perf:      map[string][]float64{},
		WorstLoss: map[string][]float64{},
	}
	set := in.Table.Frequencies()
	for _, pol := range policies {
		for _, b := range budgets {
			in.Budget = units.Watts(b)
			out, err := pol.Assign(in)
			if err != nil {
				return nil, err
			}
			rep.Perf[pol.Name()] = append(rep.Perf[pol.Name()],
				baseline.MeanNormPerf(in.Decs, in.Idle, out, set.Max()))
			rep.WorstLoss[pol.Name()] = append(rep.WorstLoss[pol.Name()],
				baseline.WorstCaseLoss(in.Decs, in.Idle, out, set))
		}
	}
	return rep, nil
}

// Render formats the report.
func (r *AblationPoliciesReport) Render() string {
	t := telemetry.Table{
		Title:   "Ablation: policy comparison (mean per-CPU normalised perf | worst per-CPU loss)",
		Headers: []string{"Budget", "fvsst", "uniform", "powerdown", "util-dvs"},
	}
	for i, b := range r.BudgetsW {
		cell := func(name string) string {
			return fmt.Sprintf("%.3f|%.2f", r.Perf[name][i], r.WorstLoss[name][i])
		}
		t.MustAddRow(fmt.Sprintf("%.0fW", b),
			cell("fvsst"), cell("uniform"), cell("powerdown"), cell("util-dvs"))
	}
	return t.String()
}

// AblationIdealReport compares the discrete ε-scan of Figure 3 against the
// continuous f_ideal extension of §5 on the fine-grained Table 1 set.
type AblationIdealReport struct {
	// Agreements counts decompositions where the two pick the same
	// setting; WithinOneStep where they differ by ≤50 MHz.
	Total, Agreements, WithinOneStep int
	// MeanAbsDiffMHz is the mean |scan − ideal|.
	MeanAbsDiffMHz float64
}

// AblationIdeal sweeps a grid of workload decompositions.
func AblationIdeal() (*AblationIdealReport, error) {
	set := power.PaperTable1().Frequencies()
	rep := &AblationIdealReport{}
	var diffSum float64
	for ai := 0; ai < 30; ai++ {
		for si := 0; si < 50; si++ {
			alpha := 0.5 + float64(ai)/10
			stall := float64(si) * 0.3e-9
			d := perfmodel.Decomposition{InvAlpha: 1 / alpha, StallSecPerInstr: stall}
			scan := fvsst.EpsilonFrequency(d, set, 0.05)
			ideal, err := fvsst.IdealEpsilonFrequency(d, set, 0.05)
			if err != nil {
				return nil, err
			}
			rep.Total++
			diff := scan.MHz() - ideal.MHz()
			if diff < 0 {
				diff = -diff
			}
			diffSum += diff
			if diff == 0 {
				rep.Agreements++
			}
			if diff <= 50 {
				rep.WithinOneStep++
			}
		}
	}
	rep.MeanAbsDiffMHz = diffSum / float64(rep.Total)
	return rep, nil
}

// Render formats the report.
func (r *AblationIdealReport) Render() string {
	return fmt.Sprintf(
		"Ablation: discrete ε-scan vs closed-form f_ideal over %d workloads\n"+
			"  identical choice: %d (%.0f%%)\n  within one 50MHz step: %d (%.0f%%)\n  mean |Δf| = %.1fMHz\n",
		r.Total,
		r.Agreements, 100*float64(r.Agreements)/float64(r.Total),
		r.WithinOneStep, 100*float64(r.WithinOneStep)/float64(r.Total),
		r.MeanAbsDiffMHz)
}

// AblationIdleReport quantifies the hot-idle pathology of §5/§7.1: system
// power with and without the idle signal on a machine with one busy and
// three hot-idle processors.
type AblationIdleReport struct {
	PowerNoSignalW   float64
	PowerWithSignalW float64
	// SavedW is the power the idle indicator recovers.
	SavedW float64
	// BusyThroughputRatio checks the busy CPU was not hurt: throughput
	// with signal / without.
	BusyThroughputRatio float64
}

// AblationIdle runs the idle-detection study.
func AblationIdle(o Options) (*AblationIdleReport, error) {
	run := func(useSignal bool) (float64, uint64, error) {
		mcfg := o.machineConfig(4)
		m, err := machine.New(mcfg)
		if err != nil {
			return 0, 0, err
		}
		mix, err := workload.NewMix(workload.Gap(o.Scale))
		if err != nil {
			return 0, 0, err
		}
		if err := m.SetMix(0, mix); err != nil {
			return 0, 0, err
		}
		cfg := o.schedConfig()
		cfg.UseIdleSignal = useSignal
		s, err := fvsst.New(cfg, m, units.Watts(560))
		if err != nil {
			return 0, 0, err
		}
		drv := fvsst.NewDriver(m, s)
		seconds := 2*float64(o.Scale) + 0.5
		if err := drv.Run(seconds); err != nil {
			return 0, 0, err
		}
		sample, err := m.ReadCounters(0)
		if err != nil {
			return 0, 0, err
		}
		return m.SystemPower().W(), sample.Instructions, nil
	}
	pNo, instrNo, err := run(false)
	if err != nil {
		return nil, err
	}
	pYes, instrYes, err := run(true)
	if err != nil {
		return nil, err
	}
	return &AblationIdleReport{
		PowerNoSignalW:      pNo,
		PowerWithSignalW:    pYes,
		SavedW:              pNo - pYes,
		BusyThroughputRatio: float64(instrYes) / float64(instrNo),
	}, nil
}

// Render formats the report.
func (r *AblationIdleReport) Render() string {
	return fmt.Sprintf(
		"Ablation: idle detection (1 busy + 3 hot-idle CPUs)\n"+
			"  system power without idle signal: %.0fW\n"+
			"  system power with idle signal:    %.0fW  (saves %.0fW)\n"+
			"  busy-CPU throughput ratio (with/without): %.3f\n",
		r.PowerNoSignalW, r.PowerWithSignalW, r.SavedW, r.BusyThroughputRatio)
}
