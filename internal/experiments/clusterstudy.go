package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// ClusterStudyReport extends the evaluation to the cluster setting the
// paper targets but leaves as future work (§6: "the development of a
// prototype for the cluster environment remains as future work"): a
// three-tier web/app/db cluster under a global power cap, scheduled by the
// global fvsst coordinator versus a uniform per-cluster frequency cap.
type ClusterStudyReport struct {
	GlobalBudgetW float64
	// TierFreqFVSST / TierFreqUniform are the mean assigned frequencies
	// (MHz) per tier under each policy after the cap.
	TierFreqFVSST   map[string]float64
	TierFreqUniform map[string]float64
	// MakespanFVSST / MakespanUniform are the times (s) at which the last
	// workload completed.
	MakespanFVSST   float64
	MakespanUniform float64
	// PowerOK reports whether both stayed within the cap.
	PowerOK bool
}

// clusterRun builds a tiered cluster and runs it to completion under a
// global budget; uniform mode pins every processor at the highest common
// frequency fitting the budget instead of consulting the predictor.
func (o Options) clusterRun(budget units.Power, uniform bool) (map[string]float64, float64, bool, error) {
	mcfg := o.machineConfig(4)
	nodes, err := cluster.Tiered(mcfg, o.Scale)
	if err != nil {
		return nil, 0, false, err
	}
	cfg := o.schedConfig()
	cfg.UseIdleSignal = true
	coord, err := cluster.New(cfg, budget, nodes...)
	if err != nil {
		return nil, 0, false, err
	}

	if uniform {
		// Pre-assign the uniform cap and never reschedule: the classic
		// "slow all nodes uniformly" response. 12 processors share the
		// budget equally.
		table := cfg.Table
		per := units.Power(budget.W() / 12)
		f, ok := table.MaxFrequencyUnder(per)
		if !ok {
			f = table.MinFrequency()
		}
		for _, n := range nodes {
			for cpu := 0; cpu < n.M.NumCPUs(); cpu++ {
				if err := n.M.SetFrequency(cpu, f); err != nil {
					return nil, 0, false, err
				}
			}
		}
		// Drive the machines directly without the coordinator.
		powerOK := true
		now := 0.0
		for !allDone(nodes) && now < 3600 {
			var total units.Power
			for _, n := range nodes {
				n.M.Step()
				total += n.M.TotalCPUPower()
			}
			if total > budget+units.Watts(1) {
				powerOK = false
			}
			now += mcfg.Quantum
		}
		if !allDone(nodes) {
			return nil, 0, false, fmt.Errorf("experiments: uniform cluster run did not finish")
		}
		freqs := map[string]float64{}
		for _, n := range nodes {
			freqs[n.Name] = f.MHz()
		}
		return freqs, lastCompletion(nodes), powerOK, nil
	}

	done, err := coord.RunUntilAllDone(3600)
	if err != nil {
		return nil, 0, false, err
	}
	if !done {
		return nil, 0, false, fmt.Errorf("experiments: fvsst cluster run did not finish")
	}
	powerOK := coord.TotalCPUPower() <= budget+units.Watts(1)
	// Mean busy-processor frequency per tier across every decision of the
	// run (a tier that finishes early goes idle and stops contributing).
	sum := map[string]float64{}
	count := map[string]int{}
	for _, d := range coord.Decisions() {
		for _, a := range d.Assignments {
			if a.Idle {
				continue
			}
			name := nodes[a.Proc.Node].Name
			sum[name] += a.Actual.MHz()
			count[name]++
		}
	}
	freqs := map[string]float64{}
	for name, s := range sum {
		freqs[name] = s / float64(count[name])
	}
	return freqs, lastCompletion(nodes), powerOK, nil
}

func allDone(nodes []*cluster.Node) bool {
	for _, n := range nodes {
		if !n.M.AllJobsDone() {
			return false
		}
	}
	return true
}

func lastCompletion(nodes []*cluster.Node) float64 {
	worst := 0.0
	for _, n := range nodes {
		for _, c := range n.M.Completions() {
			if c.At > worst {
				worst = c.At
			}
		}
	}
	return worst
}

// ClusterStudy runs the tiered-cluster comparison under a 900 W global cap
// (12 processors; unconstrained they would draw up to 1680 W).
func ClusterStudy(o Options) (*ClusterStudyReport, error) {
	const budgetW = 900
	fvFreqs, fvMakespan, fvOK, err := o.clusterRun(units.Watts(budgetW), false)
	if err != nil {
		return nil, err
	}
	unFreqs, unMakespan, unOK, err := o.clusterRun(units.Watts(budgetW), true)
	if err != nil {
		return nil, err
	}
	return &ClusterStudyReport{
		GlobalBudgetW:   budgetW,
		TierFreqFVSST:   fvFreqs,
		TierFreqUniform: unFreqs,
		MakespanFVSST:   fvMakespan,
		MakespanUniform: unMakespan,
		PowerOK:         fvOK && unOK,
	}, nil
}

// Render formats the report.
func (r *ClusterStudyReport) Render() string {
	t := telemetry.Table{
		Title:   fmt.Sprintf("Cluster study: 3-tier cluster under a %.0fW global cap", r.GlobalBudgetW),
		Headers: []string{"Tier", "fvsst mean f", "uniform f"},
	}
	for _, tier := range []string{"web", "app", "db"} {
		t.MustAddRow(tier,
			fmt.Sprintf("%.0fMHz", r.TierFreqFVSST[tier]),
			fmt.Sprintf("%.0fMHz", r.TierFreqUniform[tier]))
	}
	return t.String() + fmt.Sprintf(
		"makespan: fvsst %.2fs vs uniform %.2fs (%.1f%% faster); power within cap: %v\n",
		r.MakespanFVSST, r.MakespanUniform,
		(r.MakespanUniform/r.MakespanFVSST-1)*100, r.PowerOK)
}
