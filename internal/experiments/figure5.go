package experiments

import (
	"fmt"

	"repro/internal/memhier"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Figure5Report reproduces Figure 5 (fvsst response to phase behaviour): a
// two-phase synthetic benchmark alternating CPU- and memory-intensive work
// on timescales longer than T; the scheduler's frequency must track the
// IPC, and power must track the frequency.
type Figure5Report struct {
	// Recorder holds the ipc, freq-mhz, desired-mhz and power series.
	Recorder *telemetry.Recorder
	// MeanFreqCPUPhaseMHz and MeanFreqMemPhaseMHz are the time-weighted
	// mean frequencies during the two phase types.
	MeanFreqCPUPhaseMHz float64
	MeanFreqMemPhaseMHz float64
	// MeanPowerCPUPhaseW and MeanPowerMemPhaseW are the corresponding
	// system powers.
	MeanPowerCPUPhaseW float64
	MeanPowerMemPhaseW float64
	// Transitions is how many phase boundaries the run contained.
	Transitions int
}

// Figure5 runs the phase-tracking study on an unconstrained budget.
func Figure5(o Options) (*Figure5Report, error) {
	h := memhier.P630()
	// Phase lengths ≫ T = 100 ms so the scheduler can track them (§8.2).
	secs := 1.0*float64(o.Scale) + 0.4
	mk := func(name string, intensity float64) (workload.Phase, error) {
		probe, err := workload.SyntheticIntensityPhase(name, intensity, 1000, h)
		if err != nil {
			return workload.Phase{}, err
		}
		instr := workload.InstructionsForDuration(probe, h, 1e9, secs)
		return workload.SyntheticIntensityPhase(name, intensity, instr, h)
	}
	cpuPhase, err := mk("cpu-phase", 95)
	if err != nil {
		return nil, err
	}
	memPhase, err := mk("mem-phase", 20)
	if err != nil {
		return nil, err
	}
	prog := workload.Program{Name: "phased"}
	const passes = 3
	for i := 0; i < passes; i++ {
		prog.Phases = append(prog.Phases, cpuPhase, memPhase)
	}

	// Run traced; recover per-phase means by splitting the series at
	// phase boundaries observed from the workload cursor.
	res, trace, err := o.tracedRun(prog, budgetFor(140))
	if err != nil {
		return nil, err
	}
	rep := &Figure5Report{Recorder: res.Recorder}

	freq := res.Recorder.Series("freq-mhz")
	pw := res.Recorder.Series("system-power-w")
	inPhase := func(t float64) string {
		for _, p := range trace {
			if p.t >= t {
				return p.name
			}
		}
		return "done"
	}
	var fCPU, fMem, pCPU, pMem telemetry.Series
	for i, pt := range freq.Points {
		name := inPhase(pt.T)
		switch name {
		case "cpu-phase":
			fCPU.MustAppend(pt.T, pt.V)
			pCPU.MustAppend(pt.T, pw.Points[i].V)
		case "mem-phase":
			fMem.MustAppend(pt.T, pt.V)
			pMem.MustAppend(pt.T, pw.Points[i].V)
		}
	}
	mean := func(s *telemetry.Series) float64 {
		vals := s.Values()
		if len(vals) == 0 {
			return 0
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals))
	}
	rep.MeanFreqCPUPhaseMHz = mean(&fCPU)
	rep.MeanFreqMemPhaseMHz = mean(&fMem)
	rep.MeanPowerCPUPhaseW = mean(&pCPU)
	rep.MeanPowerMemPhaseW = mean(&pMem)
	prev := ""
	for _, p := range trace {
		if p.name != prev {
			rep.Transitions++
			prev = p.name
		}
	}
	return rep, nil
}

// WriteCSVTo writes the full per-quantum traces to dir/fig5.csv.
func (r *Figure5Report) WriteCSVTo(dir string) error {
	return writeCSVFile(dir, "fig5.csv", r.Recorder)
}

// Render formats the report.
func (r *Figure5Report) Render() string {
	out := "Figure 5: fvsst response to phase behaviour\n"
	out += telemetry.AsciiChart(r.Recorder.Series("ipc"), 8, 72)
	out += telemetry.AsciiChart(r.Recorder.Series("freq-mhz"), 8, 72)
	out += telemetry.AsciiChart(r.Recorder.Series("system-power-w"), 8, 72)
	out += fmt.Sprintf("mean frequency: cpu-phase %.0fMHz, mem-phase %.0fMHz\n",
		r.MeanFreqCPUPhaseMHz, r.MeanFreqMemPhaseMHz)
	out += fmt.Sprintf("mean system power: cpu-phase %.0fW, mem-phase %.0fW\n",
		r.MeanPowerCPUPhaseW, r.MeanPowerMemPhaseW)
	return out
}
