package experiments

import (
	"testing"
)

// TestRunAllParallelDeterminism pins the harness's core property: the same
// Options produce byte-identical rendered reports at any worker count,
// because every experiment derives all randomness from Options.Seed with
// fixed offsets and shares no mutable state (see the RunAll doc for the
// seeding convention). Table2 exercises the single-node path, cluster the
// multi-node coordinator, farm-powerfail the hierarchical allocator.
func TestRunAllParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run too slow for -short")
	}
	ids := []string{"table2", "cluster", "farm-powerfail"}
	opts := TestOptions()

	render := func(results []Result) []string {
		t.Helper()
		out := make([]string, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.ID, r.Err)
			}
			out[i] = r.Rendered
		}
		return out
	}

	first := render(RunAll(opts, ids, 4))
	second := render(RunAll(opts, ids, 4))
	sequential := render(RunAll(opts, ids, 1))
	for i, id := range ids {
		if first[i] != second[i] {
			t.Errorf("%s: two parallel-4 runs differ", id)
		}
		if first[i] != sequential[i] {
			t.Errorf("%s: parallel-4 differs from sequential", id)
		}
		if len(first[i]) == 0 {
			t.Errorf("%s: empty render", id)
		}
	}
}

// benchIDs are the cheap analytic experiments — enough work to exercise
// the pool without turning `make bench` into a full paper regeneration.
var benchIDs = []string{"table1", "worked", "ab-policies", "ab-ideal", "ab-idle", "ab-masking"}

func benchRunAll(b *testing.B, parallel int) {
	opts := TestOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range RunAll(opts, benchIDs, parallel) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkRunAllSequential / BenchmarkRunAllParallel4 compare the harness
// at 1 vs 4 workers; on a ≥4-core box the parallel run should approach the
// worker-count speedup since experiments share no state.
func BenchmarkRunAllSequential(b *testing.B) { benchRunAll(b, 1) }
func BenchmarkRunAllParallel4(b *testing.B)  { benchRunAll(b, 4) }

// TestRunAllOrderAndErrors checks input-order results and the error paths:
// an unknown id is reported in place without failing the whole run.
func TestRunAllOrderAndErrors(t *testing.T) {
	results := RunAll(TestOptions(), []string{"worked", "no-such-id", "table1"}, 2)
	if len(results) != 3 {
		t.Fatalf("%d results for 3 ids", len(results))
	}
	if results[0].ID != "worked" || results[2].ID != "table1" {
		t.Errorf("results out of input order: %q, %q", results[0].ID, results[2].ID)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("valid ids errored: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("unknown id did not error")
	}
	if results[0].Rendered == "" || results[0].WallSeconds < 0 {
		t.Error("missing render or negative wall time")
	}
}
