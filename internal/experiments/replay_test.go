package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// recordDecisions runs a generated scenario with a JSONL sink and reads
// its scheduling passes back through the decision reader — the recorded
// side of the replay differential.
func recordDecisions(t *testing.T, seed int64) (scenario.Spec, []obs.Event) {
	t.Helper()
	spec := scenario.Generate(seed).FaultFree()
	var buf bytes.Buffer
	sink := obs.NewJSONLWriter(&buf)
	if _, err := scenario.RunCluster(spec, scenario.Options{Sink: sink}); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	passes, err := obs.ReadDecisions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) == 0 {
		t.Fatalf("seed %d recorded no passes", seed)
	}
	return spec, passes
}

// TestReplayFidelity is the golden contract of the harness: an
// unperturbed replay must reproduce every recorded decision to the byte
// — same desired, actual and voltage on every CPU of every pass. Only
// then do perturbed replays mean anything.
func TestReplayFidelity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		spec, passes := recordDecisions(t, seed)
		cfg, err := spec.SchedulerConfig()
		if err != nil {
			t.Fatal(err)
		}
		res, err := ReplayDecisions(passes, cfg, scenario.PolicyKnobs{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Skipped != 0 {
			t.Fatalf("seed %d: %d passes not replayable", seed, res.Skipped)
		}
		if len(res.Passes) != len(passes) {
			t.Fatalf("seed %d: replayed %d of %d passes", seed, len(res.Passes), len(passes))
		}
		for pi, rp := range res.Passes {
			rec := passes[pi]
			if rp.At != rec.At {
				t.Fatalf("seed %d pass %d: time %v vs recorded %v", seed, pi, rp.At, rec.At)
			}
			if rp.BudgetMet == rec.BudgetMissed {
				t.Fatalf("seed %d pass %d: budget-met %v vs recorded missed %v", seed, pi, rp.BudgetMet, rec.BudgetMissed)
			}
			for ci, ct := range rec.CPUs {
				if rp.DesiredMHz[ci] != ct.DesiredMHz || rp.ActualMHz[ci] != ct.ActualMHz || rp.VoltageV[ci] != ct.VoltageV {
					t.Fatalf("seed %d pass %d cpu %d: replay (%v, %v, %v) vs recorded (%v, %v, %v)",
						seed, pi, ci,
						rp.DesiredMHz[ci], rp.ActualMHz[ci], rp.VoltageV[ci],
						ct.DesiredMHz, ct.ActualMHz, ct.VoltageV)
				}
			}
		}
	}
}

// TestReplayEpsilonSabotage perturbs only ε and demands the fitness
// ingredients move: a counterfactual harness that returns the same
// numbers under different knobs is measuring nothing.
func TestReplayEpsilonSabotage(t *testing.T) {
	changed := false
	for seed := int64(1); seed <= 10 && !changed; seed++ {
		spec, passes := recordDecisions(t, seed)
		cfg, err := spec.SchedulerConfig()
		if err != nil {
			t.Fatal(err)
		}
		base, err := ReplayDecisions(passes, cfg, scenario.PolicyKnobs{})
		if err != nil {
			t.Fatal(err)
		}
		hot, err := ReplayDecisions(passes, cfg, scenario.PolicyKnobs{Epsilon: 0.45})
		if err != nil {
			t.Fatal(err)
		}
		if hot.TotalLoss != base.TotalLoss || hot.EnergyProxyJ != base.EnergyProxyJ {
			changed = true
		}
	}
	if !changed {
		t.Fatal("ε=0.45 left loss and energy untouched across 10 seeds")
	}
}

// TestReplayKnobs: the debounce and allocator knobs run, stay within
// table bounds, and the optimal allocator never predicts more loss than
// the recorded greedy replay.
func TestReplayKnobs(t *testing.T) {
	spec, passes := recordDecisions(t, 3)
	cfg, err := spec.SchedulerConfig()
	if err != nil {
		t.Fatal(err)
	}
	base, err := ReplayDecisions(passes, cfg, scenario.PolicyKnobs{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ReplayDecisions(passes, cfg, scenario.PolicyKnobs{Allocator: scenario.AllocOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalLoss > base.TotalLoss+1e-12 {
		t.Fatalf("optimal allocator lost more than greedy: %v vs %v", opt.TotalLoss, base.TotalLoss)
	}
	deb, err := ReplayDecisions(passes, cfg, scenario.PolicyKnobs{DebouncePasses: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(deb.Passes) != len(base.Passes) {
		t.Fatalf("debounce dropped passes: %d vs %d", len(deb.Passes), len(base.Passes))
	}
	deb2, err := ReplayDecisions(passes, cfg, scenario.PolicyKnobs{DebouncePasses: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range deb.Passes {
		for c := range deb.Passes[i].ActualMHz {
			if deb.Passes[i].ActualMHz[c] != deb2.Passes[i].ActualMHz[c] {
				t.Fatalf("debounced replay nondeterministic at pass %d cpu %d", i, c)
			}
		}
	}
}
