package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/farm"
	"repro/internal/machine"
	"repro/internal/serve"
	"repro/internal/units"
)

// The serve-hotspot study lifts the serving subsystem to the farm level:
// two clusters of two 4-way nodes share a 400 W budget (of a 2240 W
// unconstrained maximum). The "hot" cluster takes heavy web traffic, the
// "cold" cluster a trickle. Two division policies:
//
//   - hierarchical: the farm allocator's least-loss greedy, steering
//     budget to the cluster whose processors would lose the most
//     performance without it — the hot one;
//   - equal-split: the same lease machinery but each cluster gets half,
//     stranding watts on the mostly-idle cold cluster while the hot
//     cluster's serving CPUs are pinned near the table floor.
//
// Within each cluster the fvsst coordinator schedules as usual (idle
// signal on); stations hang off the coordinator's quantum hook, so
// arrivals, dispatch and timeout sweeps bracket the lockstep node
// stepping. Both policies serve byte-identical request sequences.
const (
	hotspotBudgetW  = 400.0
	hotspotNodes    = 2 // nodes per cluster
	hotspotNodeCPUs = 4
	hotspotWebRate  = 3.5 // requests/s per hot web client
	hotspotPeriods  = 10  // allocator pass every 10 quanta = 0.1 s
	hotspotLeaseTTL = 0.3
	hotspotSafety   = 0.02
)

// hotspotClusterSpec shapes one cluster's per-node traffic.
type hotspotClusterSpec struct {
	name       string
	webClients int
	webSpec    string
	batch      bool // one 1 req/s batch client per node
	seedOff    int64
}

func hotspotSpecs() []hotspotClusterSpec {
	return []hotspotClusterSpec{
		{name: "hot", webClients: 4, webSpec: fmt.Sprintf("gamma:%g,cv=1.5", hotspotWebRate), batch: true, seedOff: 400},
		{name: "cold", webClients: 2, webSpec: "poisson:0.5", seedOff: 500},
	}
}

// HotspotClusterScore is one cluster's aggregate web score under a policy.
type HotspotClusterScore struct {
	Cluster    string
	Offered    uint64
	Completed  uint64
	TimedOut   uint64
	SLOOk      uint64
	Attainment float64
	P99S       float64 // worst node
	MeanAllocW float64
	PeakBacklog int
}

// HotspotOutcome is one policy's run.
type HotspotOutcome struct {
	Policy   string
	Clusters []HotspotClusterScore // hot, cold
	Jain     float64               // worst station's client fairness (hot cluster)
}

// hotspotNode bundles one node's serving state.
type hotspotNode struct {
	m      *machine.Machine
	st     *serve.Station
	feeder *serve.Feeder
}

// hotspotRun serves the scenario under one farm division policy.
func (o Options) hotspotRun(policy farm.Policy, duration float64) (HotspotOutcome, error) {
	specs := hotspotSpecs()
	metrics := farm.NewMetrics()
	cfg := o.schedConfig()
	cfg.UseIdleSignal = true

	coords := make([]*cluster.Coordinator, len(specs))
	holders := make([]*farm.Holder, len(specs))
	members := make([]farm.Member, len(specs))
	nodesBy := make([][]hotspotNode, len(specs))
	feeding := true
	quantum := 0.0
	for ci, spec := range specs {
		var cnodes []*cluster.Node
		for j := 0; j < hotspotNodes; j++ {
			mcfg := o.machineConfig(hotspotNodeCPUs)
			mcfg.Seed = o.Seed + spec.seedOff + int64(j)
			mcfg.Name = fmt.Sprintf("%s-%d", spec.name, j)
			m, err := machine.New(mcfg)
			if err != nil {
				return HotspotOutcome{}, err
			}
			quantum = m.Config().Quantum
			clients := spec.webClients
			if spec.batch {
				clients++
			}
			st, err := serve.NewStation(m, serve.Config{
				Classes: serveClasses(),
				Clients: clients,
				Seed:    mcfg.Seed + 17, // station seed convention: machine seed + 17
				Node:    mcfg.Name,
			})
			if err != nil {
				return HotspotOutcome{}, err
			}
			feeder := &serve.Feeder{}
			for cl := 0; cl < spec.webClients; cl++ {
				aspec, err := serve.ParseArrivalSpec(spec.webSpec)
				if err != nil {
					return HotspotOutcome{}, err
				}
				stm, err := aspec.NewStream(mcfg.Seed + 600 + int64(cl))
				if err != nil {
					return HotspotOutcome{}, err
				}
				feeder.Add(0, cl, stm)
			}
			if spec.batch {
				aspec, err := serve.ParseArrivalSpec("poisson:1")
				if err != nil {
					return HotspotOutcome{}, err
				}
				stm, err := aspec.NewStream(mcfg.Seed + 650)
				if err != nil {
					return HotspotOutcome{}, err
				}
				feeder.Add(1, clients-1, stm)
			}
			nodesBy[ci] = append(nodesBy[ci], hotspotNode{m: m, st: st, feeder: feeder})
			cnodes = append(cnodes, &cluster.Node{Name: mcfg.Name, M: m, RTT: 0.002})
		}
		c, err := cluster.New(cfg, units.Watts(hotspotBudgetW/float64(len(specs))), cnodes...)
		if err != nil {
			return HotspotOutcome{}, err
		}
		// Stations ride the coordinator's quantum hook: deliver matured
		// arrivals and start idle CPUs before the lockstep node stepping,
		// sweep timeouts after it.
		myNodes := nodesBy[ci]
		c.SetQuantumHook(
			func(now float64) {
				for k := range myNodes {
					if feeding {
						myNodes[k].feeder.DeliverUpTo(now, myNodes[k].st)
					}
					myNodes[k].st.BeforeQuantum(now)
				}
			},
			func(now float64) {
				for k := range myNodes {
					myNodes[k].st.AfterQuantum(now)
				}
			})
		floor := c.FloorPower()
		h, err := farm.NewHolder(spec.name, floor, nil, metrics)
		if err != nil {
			return HotspotOutcome{}, err
		}
		c.SetBudgetSource(h)
		coords[ci] = c
		holders[ci] = h
		members[ci] = farm.Member{Name: spec.name, Floor: floor}
	}

	alloc, err := farm.NewAllocator(farm.AllocatorConfig{
		Source:   farm.Static(units.Watts(hotspotBudgetW)),
		Members:  members,
		Periods:  hotspotPeriods,
		LeaseTTL: hotspotLeaseTTL,
		Safety:   hotspotSafety,
		Policy:   policy,
		Metrics:  metrics,
	})
	if err != nil {
		return HotspotOutcome{}, err
	}
	allocSum := make([]float64, len(specs))
	allocN := 0
	pass := func(now float64, trigger string) error {
		demands := make([]farm.Demand, len(coords))
		for ci, c := range coords {
			curve, err := c.DemandCurve()
			if err != nil {
				return err
			}
			demands[ci] = farm.Demand{Curve: curve, Reachable: true}
		}
		a, err := alloc.Allocate(now, trigger, demands)
		if err != nil {
			return err
		}
		for _, l := range a.Leases {
			for ci := range specs {
				if specs[ci].name == l.Member {
					holders[ci].Grant(l)
					allocSum[ci] += float64(l.Budget)
				}
			}
		}
		allocN++
		return nil
	}
	if err := pass(0, "initial"); err != nil {
		return HotspotOutcome{}, err
	}
	tl := engine.NewTimeline()
	met, err := engine.NewMetronome(tl, quantum, hotspotPeriods)
	if err != nil {
		return HotspotOutcome{}, err
	}

	out := HotspotOutcome{Policy: string(policy), Jain: 1}
	peakBacklog := make([]int, len(specs))
	deadline := duration + 10
	for i := 0; ; i++ {
		now := float64(i) * quantum
		feeding = now < duration
		if now >= duration {
			drained := true
			for ci := range specs {
				for k := range nodesBy[ci] {
					if !nodesBy[ci][k].st.Drained() {
						drained = false
					}
				}
			}
			if drained {
				break
			}
			if now >= deadline {
				return HotspotOutcome{}, fmt.Errorf("experiments: %s hotspot run did not drain", policy)
			}
		}
		if i > 0 {
			if err := tl.AdvanceTo(now); err != nil {
				return HotspotOutcome{}, err
			}
			if trig, due := alloc.Trigger(now, met.TakeDue()); due {
				if err := pass(now, trig); err != nil {
					return HotspotOutcome{}, err
				}
			}
		}
		for ci, c := range coords {
			if err := c.Step(); err != nil {
				return HotspotOutcome{}, err
			}
			metrics.SetUsed(specs[ci].name, c.TotalCPUPower())
			backlog := 0
			for k := range nodesBy[ci] {
				backlog += nodesBy[ci][k].st.Backlog()
			}
			metrics.SetBacklog(specs[ci].name, backlog)
			if backlog > peakBacklog[ci] {
				peakBacklog[ci] = backlog
			}
		}
	}

	for ci, spec := range specs {
		score := HotspotClusterScore{Cluster: spec.name, PeakBacklog: peakBacklog[ci]}
		for k := range nodesBy[ci] {
			sum := nodesBy[ci][k].st.Scoreboard().Summarize(duration)
			web := sum.Classes[0]
			score.Offered += web.Offered
			score.Completed += web.Completed
			score.TimedOut += web.TimedOut
			score.SLOOk += web.SLOOk
			if web.P99S > score.P99S {
				score.P99S = web.P99S
			}
			if spec.name == "hot" && sum.Jain < out.Jain {
				out.Jain = sum.Jain
			}
		}
		if resolved := score.Completed + score.TimedOut; resolved > 0 {
			score.Attainment = float64(score.SLOOk) / float64(resolved)
		}
		if allocN > 0 {
			score.MeanAllocW = allocSum[ci] / float64(allocN)
		}
		out.Clusters = append(out.Clusters, score)
	}
	return out, nil
}

// ServeHotspotReport compares the two division policies.
type ServeHotspotReport struct {
	BudgetW      float64
	DurationSec  float64
	Hierarchical HotspotOutcome
	EqualSplit   HotspotOutcome
}

// ServeHotspot runs the hotspot serving study.
func ServeHotspot(o Options) (*ServeHotspotReport, error) {
	duration := 8.0 * float64(o.Scale)
	if duration < 3 {
		duration = 3
	}
	hier, err := o.hotspotRun(farm.PolicyLeastLoss, duration)
	if err != nil {
		return nil, err
	}
	hier.Policy = "hierarchical"
	equal, err := o.hotspotRun(farm.PolicyEqualSplit, duration)
	if err != nil {
		return nil, err
	}
	equal.Policy = "equal-split"
	for ci := range hier.Clusters {
		if hier.Clusters[ci].Offered != equal.Clusters[ci].Offered {
			return nil, fmt.Errorf("experiments: hotspot traffic diverged for %s: %d vs %d offered",
				hier.Clusters[ci].Cluster, hier.Clusters[ci].Offered, equal.Clusters[ci].Offered)
		}
	}
	return &ServeHotspotReport{
		BudgetW:      hotspotBudgetW,
		DurationSec:  duration,
		Hierarchical: hier,
		EqualSplit:   equal,
	}, nil
}

// Outcomes returns the two policies in presentation order.
func (r *ServeHotspotReport) Outcomes() []HotspotOutcome {
	return []HotspotOutcome{r.Hierarchical, r.EqualSplit}
}

// Render formats the report.
func (r *ServeHotspotReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b,
		"Serve hotspot: 2 clusters × %d nodes × %d CPUs under a %.0fW farm budget for %.1fs;\n"+
			"hot cluster takes %.0f× the cold cluster's request rate\n",
		hotspotNodes, hotspotNodeCPUs, r.BudgetW, r.DurationSec,
		hotspotWebRate*4/(0.5*2))
	for _, p := range r.Outcomes() {
		fmt.Fprintf(&b, "policy %s (hot-cluster jain %.4f):\n", p.Policy, p.Jain)
		for _, c := range p.Clusters {
			fmt.Fprintf(&b,
				"  %-5s web attainment %6.2f%% (%d/%d slo-ok, %d timeout)  p99 %7.4fs  mean alloc %5.0fW  peak backlog %d\n",
				c.Cluster, 100*c.Attainment, c.SLOOk, c.Completed+c.TimedOut, c.TimedOut,
				c.P99S, c.MeanAllocW, c.PeakBacklog)
		}
	}
	return b.String()
}
