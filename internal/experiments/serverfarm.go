package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// ServerFarmReport extends the evaluation to the open-workload server
// setting the introduction motivates: a node receiving a diurnal request
// load. fvsst (with the idle signal) tracks demand — power follows the
// day/night curve — while an unmanaged node burns full power around the
// clock. Unlike the related demand-scaling work (§3.1), fvsst also keeps
// a global budget enforceable at the same time.
type ServerFarmReport struct {
	// JobsCompleted under each regime (must match — no work is dropped).
	JobsCompleted int
	// MeanPowerFVSSTW / MeanPowerUnmanagedW are time-averaged system
	// powers.
	MeanPowerFVSSTW     float64
	MeanPowerUnmanagedW float64
	// PeakPowerW / TroughPowerW are the fvsst run's mean powers during
	// the high- and low-demand half-periods, showing demand tracking.
	PeakPowerW   float64
	TroughPowerW float64
	// P95LatencyPenalty is the ratio of the 95th-percentile job sojourn
	// time under fvsst to unmanaged.
	P95LatencyPenalty float64
}

// serverRequest builds one request-burst job: mostly memory-bound service
// (session lookups) with a CPU-bound tail (response rendering).
func serverRequest(i int) workload.Program {
	return workload.Program{
		Name: fmt.Sprintf("req%d", i),
		Phases: []workload.Phase{
			{Name: "lookup", Alpha: 1.1,
				Rates:        memhier.AccessRates{L2PerInstr: 0.02, L3PerInstr: 0.004, MemPerInstr: 0.012},
				Instructions: 2e6, NonMemStallCyclesPerInstr: 0.08},
			{Name: "render", Alpha: 1.3,
				Rates:        memhier.AccessRates{L2PerInstr: 0.006, MemPerInstr: 0.0004},
				Instructions: 4e6, NonMemStallCyclesPerInstr: 0.08},
		},
	}
}

type farmOutcome struct {
	completed  int
	meanPowerW float64
	peakW      float64
	troughW    float64
	sojourns   []float64
}

func (o Options) farmRun(managed bool, sched workload.Schedule, period, horizon float64) (farmOutcome, error) {
	mcfg := o.machineConfig(4)
	m, err := machine.New(mcfg)
	if err != nil {
		return farmOutcome{}, err
	}
	if err := m.Submit(sched); err != nil {
		return farmOutcome{}, err
	}

	var drv *fvsst.Driver
	if managed {
		cfg := o.schedConfig()
		cfg.UseIdleSignal = true
		s, err := fvsst.New(cfg, m, units.Watts(560))
		if err != nil {
			return farmOutcome{}, err
		}
		drv = fvsst.NewDriver(m, s)
	}

	var powerSum, peakSum, troughSum float64
	var powerN, peakN, troughN int
	deadline := horizon + 5
	for m.Now() < deadline && !m.AllJobsDone() {
		if managed {
			if err := drv.Step(); err != nil {
				return farmOutcome{}, err
			}
		} else {
			m.Step()
		}
		p := m.SystemPower().W()
		powerSum += p
		powerN++
		// First half of each period is the demand peak (sin > 0).
		phase := m.Now() / period
		if phase-float64(int(phase)) < 0.5 {
			peakSum += p
			peakN++
		} else {
			troughSum += p
			troughN++
		}
	}
	if !m.AllJobsDone() {
		return farmOutcome{}, fmt.Errorf("experiments: farm run did not drain (pending %d)", m.PendingArrivals())
	}

	// Sojourn times: match completions to arrivals per CPU in FIFO order
	// (round-robin mixes preserve per-CPU arrival order for identical
	// jobs).
	byCPUArr := map[int][]float64{}
	for _, a := range sched {
		byCPUArr[a.CPU] = append(byCPUArr[a.CPU], a.At)
	}
	byCPUDone := map[int][]float64{}
	for _, c := range m.Completions() {
		byCPUDone[c.CPU] = append(byCPUDone[c.CPU], c.At)
	}
	var sojourns []float64
	completed := 0
	for cpu, arr := range byCPUArr {
		done := byCPUDone[cpu]
		sort.Float64s(arr)
		sort.Float64s(done)
		if len(done) != len(arr) {
			return farmOutcome{}, fmt.Errorf("experiments: cpu %d drained %d of %d jobs", cpu, len(done), len(arr))
		}
		for i := range arr {
			sojourns = append(sojourns, done[i]-arr[i])
			completed++
		}
	}
	out := farmOutcome{
		completed:  completed,
		meanPowerW: powerSum / float64(powerN),
		sojourns:   sojourns,
	}
	if peakN > 0 {
		out.peakW = peakSum / float64(peakN)
	}
	if troughN > 0 {
		out.troughW = troughSum / float64(troughN)
	}
	return out, nil
}

// ServerFarm runs the diurnal-load study.
func ServerFarm(o Options) (*ServerFarmReport, error) {
	period := 4.0 * float64(o.Scale)
	if period < 2 {
		period = 2
	}
	horizon := 2 * period
	rng := rand.New(rand.NewSource(o.Seed + 77))
	// Each request is ~17 ms of work; a base rate of 30/s puts mean
	// utilisation around 25% with peaks near 50% — a realistically
	// provisioned server, leaving idle capacity for fvsst to park.
	sched, err := workload.DiurnalArrivals(rng, 30, 0.9, period, horizon, 4, serverRequest)
	if err != nil {
		return nil, err
	}

	managed, err := o.farmRun(true, sched, period, horizon)
	if err != nil {
		return nil, err
	}
	unmanaged, err := o.farmRun(false, sched, period, horizon)
	if err != nil {
		return nil, err
	}
	if managed.completed != unmanaged.completed {
		return nil, fmt.Errorf("experiments: completion mismatch %d vs %d", managed.completed, unmanaged.completed)
	}
	rep := &ServerFarmReport{
		JobsCompleted:       managed.completed,
		MeanPowerFVSSTW:     managed.meanPowerW,
		MeanPowerUnmanagedW: unmanaged.meanPowerW,
		PeakPowerW:          managed.peakW,
		TroughPowerW:        managed.troughW,
	}
	mp := stats.Percentile(managed.sojourns, 95)
	up := stats.Percentile(unmanaged.sojourns, 95)
	if up > 0 {
		rep.P95LatencyPenalty = mp / up
	}
	return rep, nil
}

// Render formats the report.
func (r *ServerFarmReport) Render() string {
	return fmt.Sprintf(
		"Server farm: diurnal request load on a 4-way node\n"+
			"  jobs completed: %d (both regimes)\n"+
			"  mean system power: fvsst %.0fW vs unmanaged %.0fW (%.0f%% saved)\n"+
			"  fvsst power tracks demand: peak half-periods %.0fW, trough %.0fW\n"+
			"  p95 sojourn-time penalty: %.2fx\n",
		r.JobsCompleted,
		r.MeanPowerFVSSTW, r.MeanPowerUnmanagedW,
		100*(1-r.MeanPowerFVSSTW/r.MeanPowerUnmanagedW),
		r.PeakPowerW, r.TroughPowerW,
		r.P95LatencyPenalty)
}
