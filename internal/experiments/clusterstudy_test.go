package experiments

import (
	"strings"
	"testing"
)

func TestClusterStudyShape(t *testing.T) {
	rep, err := ClusterStudy(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PowerOK {
		t.Error("a policy exceeded the global cap")
	}
	// The §4.2 tier claim: the memory-bound db tier is throttled deeper
	// than the CPU-bound app tier under the global fvsst schedule.
	if rep.TierFreqFVSST["db"] >= rep.TierFreqFVSST["app"]-25 {
		t.Errorf("db tier %.0fMHz not clearly below app tier %.0fMHz",
			rep.TierFreqFVSST["db"], rep.TierFreqFVSST["app"])
	}
	// Uniform gives every tier the same frequency by construction.
	if rep.TierFreqUniform["db"] != rep.TierFreqUniform["app"] {
		t.Errorf("uniform tiers differ: %v", rep.TierFreqUniform)
	}
	// fvsst finishes the same work no slower (and typically faster) than
	// the uniform cap under the same budget.
	if rep.MakespanFVSST > rep.MakespanUniform*1.02 {
		t.Errorf("fvsst makespan %.2fs worse than uniform %.2fs",
			rep.MakespanFVSST, rep.MakespanUniform)
	}
	if !strings.Contains(rep.Render(), "makespan") {
		t.Error("render incomplete")
	}
}
