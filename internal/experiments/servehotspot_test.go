package experiments

import "testing"

// TestServeHotspot asserts the farm-level claim: least-loss hierarchical
// allocation strictly beats equal-split on the hot cluster's web SLO
// attainment (and tail latency), because it moves stranded cold-cluster
// watts to where the requests are.
func TestServeHotspot(t *testing.T) {
	rep, err := ServeHotspot(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	hh, eh := rep.Hierarchical.Clusters[0], rep.EqualSplit.Clusters[0]
	if hh.Cluster != "hot" || hh.Offered == 0 {
		t.Fatalf("hot cluster row malformed: %+v", hh)
	}
	if hh.Attainment <= eh.Attainment {
		t.Errorf("hot web attainment: hierarchical %.3f not above equal-split %.3f",
			hh.Attainment, eh.Attainment)
	}
	if hh.P99S >= eh.P99S {
		t.Errorf("hot web p99: hierarchical %.4fs not below equal-split %.4fs", hh.P99S, eh.P99S)
	}
	if hh.MeanAllocW <= eh.MeanAllocW {
		t.Errorf("hot mean allocation: hierarchical %.0fW not above equal-split %.0fW",
			hh.MeanAllocW, eh.MeanAllocW)
	}
	// The cold cluster's trickle stays healthy under both policies: the
	// allocator never starves it below its floor.
	for _, p := range rep.Outcomes() {
		cold := p.Clusters[1]
		if cold.Attainment < 0.9 {
			t.Errorf("%s: cold attainment %.3f", p.Policy, cold.Attainment)
		}
	}
}

// TestServeHotspotDeterministic: equal options give byte-identical
// reports.
func TestServeHotspotDeterministic(t *testing.T) {
	run := func() string {
		rep, err := ServeHotspot(TestOptions())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("renders differ:\n%s\n---\n%s", a, b)
	}
}
