package experiments

import "testing"

// TestServeDiurnalDrop asserts the study's qualitative claims: identical
// traffic, and fvsst strictly ahead of uniform on drop-window web SLO
// attainment, whole-run web p99 and mean power.
func TestServeDiurnalDrop(t *testing.T) {
	rep, err := ServeDiurnalDrop(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.FVSST.Offered != rep.Uniform.Offered || rep.FVSST.Offered == 0 {
		t.Fatalf("offered: fvsst %d, uniform %d", rep.FVSST.Offered, rep.Uniform.Offered)
	}
	fw, uw := rep.FVSST.Drop[0], rep.Uniform.Drop[0]
	if fw.Class != "web" || fw.Resolved == 0 {
		t.Fatalf("drop window web row malformed: %+v", fw)
	}
	if fw.Attainment <= uw.Attainment {
		t.Errorf("drop-window web attainment: fvsst %.3f not above uniform %.3f",
			fw.Attainment, uw.Attainment)
	}
	if fp, up := rep.FVSST.Final.Classes[0].P99S, rep.Uniform.Final.Classes[0].P99S; fp >= up {
		t.Errorf("web p99: fvsst %.4fs not below uniform %.4fs", fp, up)
	}
	if rep.FVSST.MeanPowerW >= rep.Uniform.MeanPowerW {
		t.Errorf("mean power: fvsst %.0fW not below uniform %.0fW",
			rep.FVSST.MeanPowerW, rep.Uniform.MeanPowerW)
	}
	// The batch class must fully complete under both policies (no
	// timeout configured, bounded queues never overflow at this load).
	for _, p := range rep.Outcomes() {
		batch := p.Final.Classes[1]
		if batch.Completed != batch.Admitted {
			t.Errorf("%s: batch completed %d of %d admitted", p.Policy, batch.Completed, batch.Admitted)
		}
	}
}

// TestServeDiurnalDeterministic: equal options give byte-identical
// reports — the property the CI serve-smoke job byte-compares.
func TestServeDiurnalDeterministic(t *testing.T) {
	run := func() string {
		rep, err := ServeDiurnalDrop(TestOptions())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("renders differ:\n%s\n---\n%s", a, b)
	}
}
