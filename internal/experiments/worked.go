package experiments

import (
	"fmt"

	"repro/internal/fvsst"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// WorkedExampleReport reproduces the §5 sample calculation on the
// motivating system: four CPUs, frequency set {0.6..1.0 GHz}, a power
// supply failure at T0 leaving a 294 W processor budget, and a workload
// shift on processor 0 at T1 that lets everything fit at its ε-constrained
// frequency.
type WorkedExampleReport struct {
	// T0Desired/T0Actual are the ε-constrained and budget-fitted vectors
	// right after the failure.
	T0Desired []units.Frequency
	T0Actual  []units.Frequency
	T0PowerW  float64
	T0Losses  []float64
	// T1 vectors after processor 0 becomes memory-intensive.
	T1Desired []units.Frequency
	T1Actual  []units.Frequency
	T1PowerW  float64
	T1Losses  []float64
	BudgetW   float64
}

// WorkedExample computes the §5 example analytically from decompositions
// that produce the paper's ε-constrained vectors.
func WorkedExample() (*WorkedExampleReport, error) {
	tab := power.Section5Table()
	set := tab.Frequencies()
	const eps = 0.05
	budget := units.Watts(294)

	mk := func(alpha, stallNs float64) *perfmodel.Decomposition {
		return &perfmodel.Decomposition{InvAlpha: 1 / alpha, StallSecPerInstr: stallNs * 1e-9}
	}
	// T0 workloads: CPU0 CPU-bound, CPU1 strongly memory-bound, CPU2/3
	// moderately memory-bound → ε-vector [1.0, 0.7, 0.8, 0.8] GHz.
	decs := []*perfmodel.Decomposition{
		mk(1.4, 0.1), mk(1.1, 8.44), mk(1.2, 5.2), mk(1.2, 5.2),
	}
	rep := &WorkedExampleReport{BudgetW: budget.W()}

	compute := func() ([]units.Frequency, []units.Frequency, float64, []float64, error) {
		desired := make([]units.Frequency, len(decs))
		for i, d := range decs {
			desired[i] = fvsst.EpsilonFrequency(*d, set, eps)
		}
		actual, _, err := fvsst.FitToBudget(decs, desired, tab, budget)
		if err != nil {
			return nil, nil, 0, nil, err
		}
		total, err := fvsst.TotalTablePower(actual, tab)
		if err != nil {
			return nil, nil, 0, nil, err
		}
		losses := make([]float64, len(decs))
		for i, d := range decs {
			losses[i] = d.PerfLoss(set.Max(), actual[i])
		}
		return desired, actual, total.W(), losses, nil
	}

	var err error
	rep.T0Desired, rep.T0Actual, rep.T0PowerW, rep.T0Losses, err = compute()
	if err != nil {
		return nil, err
	}

	// T1: processor 0's aggregate becomes memory-intensive (ε-frequency
	// 0.6 GHz); now everything fits ε-constrained at 282 W.
	decs[0] = mk(1.0, 12)
	rep.T1Desired, rep.T1Actual, rep.T1PowerW, rep.T1Losses, err = compute()
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Render formats the report.
func (r *WorkedExampleReport) Render() string {
	t := telemetry.Table{
		Title:   fmt.Sprintf("§5 worked example (budget %.0fW, set {0.6..1.0GHz})", r.BudgetW),
		Headers: []string{"", "CPU0", "CPU1", "CPU2", "CPU3", "ΣP"},
	}
	fm := func(fs []units.Frequency, i int) string { return fs[i].String() }
	t.MustAddRow("T0 ε-constrained", fm(r.T0Desired, 0), fm(r.T0Desired, 1), fm(r.T0Desired, 2), fm(r.T0Desired, 3), "")
	t.MustAddRow("T0 actual", fm(r.T0Actual, 0), fm(r.T0Actual, 1), fm(r.T0Actual, 2), fm(r.T0Actual, 3), fmt.Sprintf("%.0fW", r.T0PowerW))
	t.MustAddRow("T1 ε-constrained", fm(r.T1Desired, 0), fm(r.T1Desired, 1), fm(r.T1Desired, 2), fm(r.T1Desired, 3), "")
	t.MustAddRow("T1 actual", fm(r.T1Actual, 0), fm(r.T1Actual, 1), fm(r.T1Actual, 2), fm(r.T1Actual, 3), fmt.Sprintf("%.0fW", r.T1PowerW))
	out := t.String()
	out += "T0 losses:"
	for _, l := range r.T0Losses {
		out += fmt.Sprintf(" %.1f%%", l*100)
	}
	out += "\nT1 losses:"
	for _, l := range r.T1Losses {
		out += fmt.Sprintf(" %.1f%%", l*100)
	}
	return out + "\n"
}
