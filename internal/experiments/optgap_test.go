package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestOptGapCampaign: the exact comparator runs across a seed corpus —
// greedy never beats the optimum, the rendering is byte-stable across
// worker counts, and the text gate numbers match the struct.
func TestOptGapCampaign(t *testing.T) {
	cfg := OptGapConfig{Seeds: 6}
	a := OptGap(cfg)
	if a.Errors != 0 || a.Violations != 0 {
		t.Fatalf("campaign not clean: %d errors %d violations", a.Errors, a.Violations)
	}
	if a.Total.Passes == 0 {
		t.Fatal("no passes measured across 6 seeds")
	}
	if a.Total.GreedyLoss < a.Total.OptimalLoss-1e-12 {
		t.Fatalf("greedy %v beats optimal %v", a.Total.GreedyLoss, a.Total.OptimalLoss)
	}
	cfg.Parallel = 4
	b := OptGap(cfg)
	if !reflect.DeepEqual(a.Seeds, b.Seeds) || !reflect.DeepEqual(a.Total, b.Total) {
		t.Fatal("report differs across worker counts")
	}

	var s1, s2 strings.Builder
	a.WriteText(&s1)
	b.WriteText(&s2)
	if s1.String() != s2.String() {
		t.Fatalf("renderings differ:\n%s\n---\n%s", s1.String(), s2.String())
	}
	if !strings.Contains(s1.String(), "worst gap") {
		t.Fatalf("rendering lacks the summary:\n%s", s1.String())
	}
}

// TestPolicySearchNeverWorse: the descent starts from the defaults, so
// the best knobs are at least as fit — and the whole search is
// deterministic.
func TestPolicySearchNeverWorse(t *testing.T) {
	cfg := PolicySearchConfig{Seeds: 2, MaxSweeps: 1}
	a, err := PolicySearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Fitness > a.Baseline.Fitness {
		t.Fatalf("search regressed: best %v vs baseline %v", a.Best.Fitness, a.Baseline.Fitness)
	}
	if a.Best.Violations != 0 {
		t.Fatalf("winning knobs violate invariants: %+v", a.Best)
	}
	if a.Evals < 2 {
		t.Fatalf("descent evaluated only %d settings", a.Evals)
	}
	b, err := PolicySearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("search nondeterministic:\n%+v\n%+v", a.Best, b.Best)
	}
	var s strings.Builder
	a.WriteText(&s)
	if !strings.Contains(s.String(), "baseline") || !strings.Contains(s.String(), "best") {
		t.Fatalf("rendering incomplete:\n%s", s.String())
	}
}

func TestPolicySearchRejectsEmpty(t *testing.T) {
	if _, err := PolicySearch(PolicySearchConfig{}); err == nil {
		t.Fatal("zero-seed search accepted")
	}
}

// TestFitnessWeightDefaults: zero weights resolve to the documented
// defaults inside the search config.
func TestFitnessWeightDefaults(t *testing.T) {
	w := DefaultFitnessWeights()
	if w.Loss != 1 || w.EnergyKJ != 0.5 || w.SLOMiss != 2 {
		t.Fatalf("defaults drifted: %+v", w)
	}
	if !(FitnessWeights{}).zero() || w.zero() {
		t.Fatal("zero detection broken")
	}
	_ = scenario.PolicyKnobs{} // the search and the driver share the knob type
}
