package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSVToExportsTraces(t *testing.T) {
	dir := t.TempDir()
	o := TestOptions()

	f5, err := Figure5(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := f5.WriteCSVTo(dir); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(b), "\n", 2)[0]
	for _, col := range []string{"time", "ipc", "freq-mhz", "system-power-w"} {
		if !strings.Contains(head, col) {
			t.Errorf("fig5.csv header %q missing %q", head, col)
		}
	}

	f9, err := Figure9(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := f9.WriteCSVTo(dir); err != nil {
		t.Fatal(err)
	}
	b, err = os.ReadFile(filepath.Join(dir, "fig9.csv"))
	if err != nil {
		t.Fatal(err)
	}
	head = strings.SplitN(string(b), "\n", 2)[0]
	if !strings.Contains(head, "desired-mhz") || !strings.Contains(head, "actual-mhz") {
		t.Errorf("fig9.csv header %q", head)
	}
	// Non-existent directory fails cleanly.
	if err := f9.WriteCSVTo(filepath.Join(dir, "missing", "deeper")); err == nil {
		t.Error("write into missing directory succeeded")
	}
}
