package experiments

import (
	"fmt"
)

// AblationExecModelReport compares predictor accuracy under the two
// ground-truth execution models: the analytic CPI with injected latency
// jitter (the default machine) and the Monte-Carlo per-block model whose
// noise emerges from miss discreteness. If the Table 2 conclusions held
// only under one noise model, they would be an artifact of the simulator;
// agreement across both is the validation.
type AblationExecModelReport struct {
	// DevAnalytic / DevMonteCarlo are the CPU3 and CPU3* deviations of
	// the 50%-intensity Table 2 row under each execution model.
	DevAnalytic       float64
	DevAnalyticStar   float64
	DevMonteCarlo     float64
	DevMonteCarloStar float64
}

// AblationExecModel runs the 50%-intensity predictor-error study under
// both execution models.
func AblationExecModel(o Options) (*AblationExecModelReport, error) {
	analytic := o
	analytic.MonteCarlo = false
	rowA, err := table2Row(analytic, 50)
	if err != nil {
		return nil, err
	}
	mc := o
	mc.MonteCarlo = true
	rowM, err := table2Row(mc, 50)
	if err != nil {
		return nil, err
	}
	return &AblationExecModelReport{
		DevAnalytic:       rowA.DevCPU[3],
		DevAnalyticStar:   rowA.DevCPU3Star,
		DevMonteCarlo:     rowM.DevCPU[3],
		DevMonteCarloStar: rowM.DevCPU3Star,
	}, nil
}

// Render formats the report.
func (r *AblationExecModelReport) Render() string {
	return fmt.Sprintf(
		"Ablation: execution model (Table 2 row, 50%% intensity)\n"+
			"  analytic+jitter:  CPU3 %.4f  CPU3* %.4f\n"+
			"  Monte-Carlo:      CPU3 %.4f  CPU3* %.4f\n"+
			"  the init/exit-exclusion conclusion holds under both noise models\n",
		r.DevAnalytic, r.DevAnalyticStar, r.DevMonteCarlo, r.DevMonteCarloStar)
}
