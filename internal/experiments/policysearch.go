package experiments

import (
	"fmt"
	"io"

	"repro/internal/scenario"
)

// FitnessWeights combines a run's three cost axes into one scalar, lower
// is better: predicted performance loss (summed over passes), energy in
// kilojoules, and the fraction of resolved requests that missed their
// SLO. Loss and energy pull in opposite directions — a policy that never
// demotes burns watts, one that always demotes burns throughput — so the
// weights are the experiment's statement of how much a kilojoule is
// worth in lost work.
type FitnessWeights struct {
	Loss     float64 `json:"loss"`
	EnergyKJ float64 `json:"energy_kj"`
	SLOMiss  float64 `json:"slo_miss"`
}

// DefaultFitnessWeights weights one unit of summed loss like 2 kJ of
// energy, and a 100% SLO-miss rate like two units of loss.
func DefaultFitnessWeights() FitnessWeights {
	return FitnessWeights{Loss: 1, EnergyKJ: 0.5, SLOMiss: 2}
}

func (w FitnessWeights) zero() bool {
	return w.Loss == 0 && w.EnergyKJ == 0 && w.SLOMiss == 0
}

// PolicyEval is one knob setting's aggregated score across the seed
// corpus. Violations should be zero for any valid knob setting; each one
// adds a large penalty so a knob that breaks an invariant can never win.
type PolicyEval struct {
	Knobs       scenario.PolicyKnobs `json:"knobs"`
	Fitness     float64              `json:"fitness"`
	Loss        float64              `json:"loss"`
	EnergyJ     float64              `json:"energy_j"`
	SLOOk       uint64               `json:"slo_ok"`
	SLOResolved uint64               `json:"slo_resolved"`
	Violations  int                  `json:"violations,omitempty"`
}

// PolicySearchConfig sizes a counterfactual policy search.
type PolicySearchConfig struct {
	// Seeds is the evaluation corpus size; every candidate knob setting
	// is scored on the same scenario.Generate seeds.
	Seeds int `json:"seeds"`
	// BaseSeed offsets the seed range; 0 means 1.
	BaseSeed int64 `json:"base_seed,omitempty"`
	// Weights is the fitness combination; the zero value means defaults.
	Weights FitnessWeights `json:"weights"`
	// MaxSweeps bounds the coordinate-descent passes; 0 means 3.
	MaxSweeps int `json:"max_sweeps,omitempty"`
}

// PolicySearchReport is the search outcome: the default-knob baseline,
// the best setting found, and every strict improvement in the order the
// descent accepted it. The whole search is deterministic — candidate
// axes are swept in a fixed order and every evaluation derives from the
// seeds alone — so two runs of the same config are byte-identical.
type PolicySearchReport struct {
	Config   PolicySearchConfig `json:"config"`
	Baseline PolicyEval         `json:"baseline"`
	Best     PolicyEval         `json:"best"`
	Evals    int                `json:"evals"`
	Sweeps   int                `json:"sweeps"`
	History  []PolicyEval       `json:"history,omitempty"`
}

// Candidate axes for the coordinate descent. Epsilon 0 keeps each spec's
// own ε; allocator "" is the paper's greedy; debounce below 2 is off.
var (
	searchEpsilons   = []float64{0, 0.02, 0.05, 0.10, 0.15, 0.25}
	searchDebounces  = []int{0, 2, 3}
	searchAllocators = []string{"", scenario.AllocUniform, scenario.AllocOptimal}
)

// PolicySearch runs a deterministic coordinate descent over the policy
// knobs: starting from the paper's defaults, each sweep tries every
// candidate value on each axis in turn and moves only on strict fitness
// improvement, so the result is never worse than the baseline. The
// search is the counterfactual complement of the exact comparator: the
// optimal allocator bounds what Step 2 could gain, the search asks
// whether any *deployable* knob setting closes part of that gap.
func PolicySearch(cfg PolicySearchConfig) (*PolicySearchReport, error) {
	if cfg.Seeds <= 0 {
		return nil, fmt.Errorf("experiments: policy search needs seeds > 0")
	}
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = 1
	}
	if cfg.Weights.zero() {
		cfg.Weights = DefaultFitnessWeights()
	}
	if cfg.MaxSweeps <= 0 {
		cfg.MaxSweeps = 3
	}

	cache := map[scenario.PolicyKnobs]PolicyEval{}
	rep := &PolicySearchReport{Config: cfg}
	eval := func(knobs scenario.PolicyKnobs) (PolicyEval, error) {
		if ev, ok := cache[knobs]; ok {
			return ev, nil
		}
		ev := PolicyEval{Knobs: knobs}
		for i := 0; i < cfg.Seeds; i++ {
			spec := scenario.Generate(cfg.BaseSeed + int64(i))
			opt := scenario.Options{}
			if knobs != (scenario.PolicyKnobs{}) {
				k := knobs
				opt.Policy = &k
			}
			r, err := scenario.RunCluster(spec, opt)
			if err != nil {
				return ev, fmt.Errorf("experiments: seed %d knobs %+v: %w", spec.Seed, knobs, err)
			}
			ev.Loss += r.PredLoss
			ev.EnergyJ += r.EnergyJ
			ev.SLOOk += r.SLOOk
			ev.SLOResolved += r.SLOResolved
			ev.Violations += len(r.Violations)
		}
		w := cfg.Weights
		ev.Fitness = w.Loss*ev.Loss + w.EnergyKJ*ev.EnergyJ/1e3
		if ev.SLOResolved > 0 {
			ev.Fitness += w.SLOMiss * float64(ev.SLOResolved-ev.SLOOk) / float64(ev.SLOResolved)
		}
		ev.Fitness += 1e6 * float64(ev.Violations)
		cache[knobs] = ev
		rep.Evals++
		return ev, nil
	}

	best, err := eval(scenario.PolicyKnobs{})
	if err != nil {
		return nil, err
	}
	rep.Baseline = best

	for rep.Sweeps < cfg.MaxSweeps {
		rep.Sweeps++
		improved := false
		try := func(cand scenario.PolicyKnobs) error {
			if cand == best.Knobs {
				return nil
			}
			ev, err := eval(cand)
			if err != nil {
				return err
			}
			if ev.Fitness < best.Fitness {
				best = ev
				rep.History = append(rep.History, ev)
				improved = true
			}
			return nil
		}
		for _, e := range searchEpsilons {
			cand := best.Knobs
			cand.Epsilon = e
			if err := try(cand); err != nil {
				return nil, err
			}
		}
		for _, d := range searchDebounces {
			cand := best.Knobs
			cand.DebouncePasses = d
			if err := try(cand); err != nil {
				return nil, err
			}
		}
		for _, a := range searchAllocators {
			cand := best.Knobs
			cand.Allocator = a
			if err := try(cand); err != nil {
				return nil, err
			}
		}
		if !improved {
			break
		}
	}
	rep.Best = best
	return rep, nil
}

// WriteText renders the search outcome as a fixed-format table.
func (r *PolicySearchReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "policy search: %d seeds, %d evals, %d sweep(s)\n",
		r.Config.Seeds, r.Evals, r.Sweeps)
	line := func(tag string, ev PolicyEval) {
		alloc := ev.Knobs.Allocator
		if alloc == "" {
			alloc = scenario.AllocGreedy
		}
		fmt.Fprintf(w, "  %-8s eps=%-5.3g debounce=%d alloc=%-8s fitness=%.9g loss=%.9g energy=%.6gkJ",
			tag, ev.Knobs.Epsilon, ev.Knobs.DebouncePasses, alloc, ev.Fitness, ev.Loss, ev.EnergyJ/1e3)
		if ev.SLOResolved > 0 {
			fmt.Fprintf(w, " slo=%d/%d", ev.SLOOk, ev.SLOResolved)
		}
		fmt.Fprintln(w)
	}
	line("baseline", r.Baseline)
	line("best", r.Best)
	if r.Best.Fitness < r.Baseline.Fitness {
		fmt.Fprintf(w, "  improvement: %.4g%%\n", 100*(r.Baseline.Fitness-r.Best.Fitness)/r.Baseline.Fitness)
	} else {
		fmt.Fprintln(w, "  defaults already optimal over the searched axes")
	}
}
