package experiments

import (
	"strings"
	"testing"

	"repro/internal/units"
)

// The experiment tests assert the *shape* claims of each paper artifact at
// test scale (DESIGN.md §4): who wins, where the knees fall, which modes
// dominate. Absolute paper numbers are recorded in EXPERIMENTS.md from a
// full-scale run.

func TestTable1ModelRegeneratesShape(t *testing.T) {
	rep, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rep.Rows))
	}
	if rep.WorstError > 0.08 {
		t.Errorf("worst fit error %.3f > 8%%", rep.WorstError)
	}
	if rep.FittedC <= 0 {
		t.Errorf("fitted C = %v", rep.FittedC)
	}
	prevV := units.Voltage(0)
	for _, row := range rep.Rows {
		if row.Voltage < prevV {
			t.Errorf("voltage not monotone at %v", row.Freq)
		}
		prevV = row.Voltage
	}
	if !strings.Contains(rep.Render(), "1GHz") {
		t.Error("render lacks 1GHz row")
	}
}

func TestFigure1SaturationShape(t *testing.T) {
	rep, err := Figure1(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Curves) != 5 {
		t.Fatalf("curves = %d", len(rep.Curves))
	}
	for _, c := range rep.Curves {
		for i := 1; i < len(c.NormPerf); i++ {
			if c.NormPerf[i] < c.NormPerf[i-1]-0.02 {
				t.Errorf("cpu%.0f: perf not monotone at %v", c.IntensityPct, c.Freqs[i])
			}
		}
	}
	// CPU-intensive work keeps scaling; memory-intensive saturates early.
	cpu100, cpu10 := rep.Curves[0], rep.Curves[4]
	at500 := func(c Figure1Curve) float64 {
		for i, f := range c.Freqs {
			if f == units.MHz(500) {
				return c.NormPerf[i]
			}
		}
		t.Fatal("500MHz missing")
		return 0
	}
	if v := at500(cpu100); v > 0.7 {
		t.Errorf("cpu100 at 500MHz = %.3f, want < 0.7 (near-linear)", v)
	}
	if v := at500(cpu10); v < 0.85 {
		t.Errorf("cpu10 at 500MHz = %.3f, want > 0.85 (saturated)", v)
	}
	if cpu100.SaturationFreq <= cpu10.SaturationFreq {
		t.Errorf("saturation ordering: cpu100 %v ≤ cpu10 %v",
			cpu100.SaturationFreq, cpu10.SaturationFreq)
	}
}

func TestTable2PredictorErrorShape(t *testing.T) {
	rep, err := Table2(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	var sum3, sumStar float64
	for _, row := range rep.Rows {
		// Hot-idle CPUs are perfectly steady → near-zero deviation.
		for cpu := 0; cpu < 3; cpu++ {
			if row.DevCPU[cpu] > 0.01 {
				t.Errorf("intensity %.0f: idle CPU%d dev %.3f > 0.01",
					row.IntensityPct, cpu, row.DevCPU[cpu])
			}
		}
		// The benchmark CPU deviates more but stays bounded.
		if row.DevCPU[3] <= row.DevCPU[0] {
			t.Errorf("intensity %.0f: CPU3 dev %.4f not above idle dev",
				row.IntensityPct, row.DevCPU[3])
		}
		if row.DevCPU[3] > 0.2 {
			t.Errorf("intensity %.0f: CPU3 dev %.3f implausibly large",
				row.IntensityPct, row.DevCPU[3])
		}
		if row.Windows == 0 {
			t.Errorf("intensity %.0f: no windows measured", row.IntensityPct)
		}
		sum3 += row.DevCPU[3]
		sumStar += row.DevCPU3Star
	}
	// Excluding the erratic init/exit phases reduces the mean deviation
	// (the paper's CPU3-vs-CPU3* finding).
	if sumStar >= sum3 {
		t.Errorf("mean CPU3* %.4f not below mean CPU3 %.4f", sumStar/4, sum3/4)
	}
}

func TestFigure4OverheadSmall(t *testing.T) {
	rep, err := Figure4(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		// Paper: ≤3% pure overhead; our measurement additionally includes
		// the deliberate ε-bounded scaling (ε = 5%), so the bound is
		// overhead + ε.
		if row.Degradation < 0 || row.Degradation > 0.03+0.05 {
			t.Errorf("intensity %.0f: degradation %.3f outside [0, 8%%]",
				row.IntensityPct, row.Degradation)
		}
	}
}

func TestFigure5PhaseTracking(t *testing.T) {
	rep, err := Figure5(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanFreqMemPhaseMHz >= rep.MeanFreqCPUPhaseMHz-50 {
		t.Errorf("frequency does not track phases: cpu %.0f vs mem %.0f MHz",
			rep.MeanFreqCPUPhaseMHz, rep.MeanFreqMemPhaseMHz)
	}
	if rep.MeanPowerMemPhaseW >= rep.MeanPowerCPUPhaseW {
		t.Errorf("power does not track frequency: cpu %.0fW vs mem %.0fW",
			rep.MeanPowerCPUPhaseW, rep.MeanPowerMemPhaseW)
	}
	if rep.Transitions < 5 {
		t.Errorf("only %d phase transitions seen", rep.Transitions)
	}
	for _, s := range []string{"ipc", "freq-mhz", "system-power-w"} {
		if rep.Recorder.Series(s).Len() == 0 {
			t.Errorf("series %s empty", s)
		}
	}
}

func TestFigure6PowerLimitShape(t *testing.T) {
	rep, err := Figure6(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CPUIntensive) != 16 || len(rep.MemIntensive) != 16 {
		t.Fatalf("points = %d/%d", len(rep.CPUIntensive), len(rep.MemIntensive))
	}
	at := func(pts []Figure6Point, w float64) float64 {
		for _, p := range pts {
			if p.LimitW == w {
				return p.NormPerf
			}
		}
		t.Fatalf("limit %v missing", w)
		return 0
	}
	// Memory-intensive: essentially flat down to 57 W (650 MHz), still
	// >0.9 at 35 W.
	if v := at(rep.MemIntensive, 57); v < 0.95 {
		t.Errorf("mem at 57W = %.3f, want ≥ 0.95", v)
	}
	if v := at(rep.MemIntensive, 35); v < 0.9 {
		t.Errorf("mem at 35W = %.3f, want ≥ 0.9", v)
	}
	// CPU-intensive: degrades a bit less than one-to-one with frequency.
	if v := at(rep.CPUIntensive, 75); v < 0.72 || v > 0.92 {
		t.Errorf("cpu at 75W = %.3f, want ≈0.8", v)
	}
	if v := at(rep.CPUIntensive, 35); v < 0.5 || v > 0.7 {
		t.Errorf("cpu at 35W = %.3f, want ≈0.6", v)
	}
	// At every limit the memory-bound phase retains at least as much
	// performance as the CPU-bound one.
	for i := range rep.CPUIntensive {
		if rep.MemIntensive[i].NormPerf < rep.CPUIntensive[i].NormPerf-0.01 {
			t.Errorf("at %vW mem %.3f below cpu %.3f",
				rep.CPUIntensive[i].LimitW, rep.MemIntensive[i].NormPerf, rep.CPUIntensive[i].NormPerf)
		}
	}
	if rep.MemKneeW > 48 {
		t.Errorf("memory knee at %.0fW, want ≤ 48W", rep.MemKneeW)
	}
}

func TestFigure7TwoPhaseShape(t *testing.T) {
	rep, err := Figure7(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Budgets) != 3 {
		t.Fatalf("budgets = %d", len(rep.Budgets))
	}
	full, mid, low := rep.Budgets[0], rep.Budgets[1], rep.Budgets[2]
	if full.NormPerf != 1 {
		t.Errorf("full-power norm perf = %v", full.NormPerf)
	}
	// Unconstrained: the 100% phase runs faster than the 75% phase.
	if full.MeanFreq100 <= full.MeanFreq75 {
		t.Errorf("full power: f(100%%)=%.0f ≤ f(75%%)=%.0f", full.MeanFreq100, full.MeanFreq75)
	}
	// 75 W: both phases pinned at/near the 750 MHz cap.
	if mid.MeanFreq100 > 760 || mid.MeanFreq100 < 700 {
		t.Errorf("75W: f(100%%) = %.0f, want ≈750", mid.MeanFreq100)
	}
	// 35 W: both phases at the 500 MHz power-constrained frequency.
	if low.MeanFreq100 > 540 || low.MeanFreq75 > 540 {
		t.Errorf("35W: f = %.0f/%.0f, want ≈500", low.MeanFreq100, low.MeanFreq75)
	}
	if !(full.NormPerf > mid.NormPerf && mid.NormPerf > low.NormPerf) {
		t.Errorf("perf not decreasing: %v %v %v", full.NormPerf, mid.NormPerf, low.NormPerf)
	}
}

func TestTable3ApplicationShape(t *testing.T) {
	rep, err := Table3(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	cell := func(app string, budgetW float64) Table3Cell {
		for i, b := range rep.Budgets {
			if b == budgetW {
				return rep.Cells[app][i]
			}
		}
		t.Fatalf("budget %v missing", budgetW)
		return Table3Cell{}
	}
	// Perf at 75 W: CPU-bound apps lose ~20%, memory-bound essentially
	// nothing (Table 3 row 2).
	for _, app := range []string{"gzip", "gap"} {
		if v := cell(app, 75).Perf; v < 0.7 || v > 0.92 {
			t.Errorf("%s perf@75W = %.2f, want ≈0.8", app, v)
		}
		if v := cell(app, 35).Perf; v < 0.4 || v > 0.75 {
			t.Errorf("%s perf@35W = %.2f, want ≈0.55", app, v)
		}
	}
	for _, app := range []string{"mcf", "health"} {
		if v := cell(app, 75).Perf; v < 0.95 {
			t.Errorf("%s perf@75W = %.2f, want ≥ 0.95", app, v)
		}
		if v := cell(app, 35).Perf; v < 0.75 || v > 0.98 {
			t.Errorf("%s perf@35W = %.2f, want significant but partial loss", app, v)
		}
	}
	// health degrades more than mcf at 35 W (0.72 vs 0.81 in the paper).
	if cell("health", 35).Perf > cell("mcf", 35).Perf+0.01 {
		t.Errorf("health@35W %.2f above mcf %.2f", cell("health", 35).Perf, cell("mcf", 35).Perf)
	}
	// Energy at full budget: memory-bound apps already save ≈half, CPU-
	// bound apps save little (Table 3 row 4).
	for _, app := range []string{"gzip", "gap"} {
		if v := cell(app, 140).Energy; v < 0.85 {
			t.Errorf("%s energy@140W = %.2f, want ≥ 0.85", app, v)
		}
	}
	for _, app := range []string{"mcf", "health"} {
		if v := cell(app, 140).Energy; v > 0.65 {
			t.Errorf("%s energy@140W = %.2f, want ≤ 0.65", app, v)
		}
	}
	// Energy falls with the budget everywhere.
	for _, app := range rep.Apps {
		if !(cell(app, 35).Energy < cell(app, 140).Energy) {
			t.Errorf("%s energy not decreasing with budget", app)
		}
		if v := cell(app, 35).Energy; v > 0.55 {
			t.Errorf("%s energy@35W = %.2f, want ≤ 0.55", app, v)
		}
	}
}

func TestFigure8ResidencyShape(t *testing.T) {
	rep, err := Figure8(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Residencies) != 12 {
		t.Fatalf("residencies = %d, want 12", len(rep.Residencies))
	}
	// CPU-bound apps pile up at the binding cap (§8.4: "must run at the
	// fastest frequency available").
	for _, app := range []string{"gzip", "gap"} {
		r750 := rep.Residency(app, 750)
		if r750 == nil || r750.ModeMHz != 750 || r750.FracAt[750] < 0.85 {
			t.Errorf("%s at cap 750: %+v", app, r750)
		}
		r500 := rep.Residency(app, 500)
		if r500 == nil || r500.ModeMHz != 500 {
			t.Errorf("%s at cap 500: %+v", app, r500)
		}
	}
	// Memory-bound apps keep a sub-cap mode at 1000 and 750 MHz caps and
	// concentrate in the 600–750 MHz band.
	for _, app := range []string{"mcf", "health"} {
		for _, capMHz := range []float64{1000, 750} {
			r := rep.Residency(app, capMHz)
			if r == nil {
				t.Fatalf("%s at cap %v missing", app, capMHz)
			}
			band := 0.0
			for _, mhz := range []float64{600, 650, 700, 750, 800, 850} {
				band += r.FracAt[mhz]
			}
			if band < 0.7 {
				t.Errorf("%s at cap %.0f: only %.0f%% in saturation band", app, capMHz, band*100)
			}
			if capMHz == 1000 && r.ModeMHz >= 900 {
				t.Errorf("%s unconstrained mode %.0fMHz, want sub-900 saturation", app, r.ModeMHz)
			}
		}
		if r := rep.Residency(app, 500); r == nil || r.ModeMHz != 500 {
			t.Errorf("%s at cap 500 not pinned: %+v", app, r)
		}
	}
}

func TestFigure9GapTrace(t *testing.T) {
	rep, err := Figure9(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	// gap wants ≥900 MHz but the 75 W cap clips it to 750 MHz.
	if rep.MaxActualMHz > 755 {
		t.Errorf("actual frequency %v exceeds the 750MHz cap", rep.MaxActualMHz)
	}
	if rep.FracClipped < 0.9 {
		t.Errorf("only %.0f%% of windows clipped, want ≥90%%", rep.FracClipped*100)
	}
	if mean := rep.Desired.TimeWeightedMean(); mean < 850 {
		t.Errorf("mean desired %.0fMHz, want ≥850 (gap is CPU-bound)", mean)
	}
	if rep.ZoomActual == nil || rep.ZoomActual.Len() == 0 {
		t.Error("Figure 10 zoom empty")
	}
}

func TestWorkedExampleMatchesPaperT1(t *testing.T) {
	rep, err := WorkedExample()
	if err != nil {
		t.Fatal(err)
	}
	if rep.T0PowerW > 294 {
		t.Errorf("T0 power %v over budget", rep.T0PowerW)
	}
	// T1 reproduces the paper exactly: ε-vector [0.6,0.7,0.8,0.8] GHz all
	// schedulable, 282 W, every loss under ε.
	want := []units.Frequency{units.MHz(600), units.MHz(700), units.MHz(800), units.MHz(800)}
	for i, f := range rep.T1Actual {
		if f != want[i] {
			t.Errorf("T1 actual[%d] = %v, want %v", i, f, want[i])
		}
	}
	if rep.T1PowerW != 282 {
		t.Errorf("T1 power = %v, want 282W", rep.T1PowerW)
	}
	for i, l := range rep.T1Losses {
		if l >= 0.05 {
			t.Errorf("T1 loss[%d] = %v, want < ε", i, l)
		}
	}
}

func TestAblationPoliciesFVSSTWins(t *testing.T) {
	rep, err := AblationPolicies()
	if err != nil {
		t.Fatal(err)
	}
	idx294 := -1
	for i, b := range rep.BudgetsW {
		if b == 294 {
			idx294 = i
		}
	}
	if idx294 < 0 {
		t.Fatal("294W budget missing")
	}
	fv := rep.Perf["fvsst"][idx294]
	for _, other := range []string{"uniform", "powerdown", "util-dvs"} {
		if fv < rep.Perf[other][idx294] {
			t.Errorf("fvsst %.3f below %s %.3f at 294W", fv, other, rep.Perf[other][idx294])
		}
	}
	if rep.WorstLoss["powerdown"][idx294] != 1 {
		t.Errorf("powerdown at 294W should sacrifice a workload entirely")
	}
	if rep.WorstLoss["fvsst"][idx294] > 0.15 {
		t.Errorf("fvsst worst loss %.3f at 294W", rep.WorstLoss["fvsst"][idx294])
	}
}

func TestAblationIdealAgreement(t *testing.T) {
	rep, err := AblationIdeal()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1500 {
		t.Fatalf("total = %d", rep.Total)
	}
	if frac := float64(rep.Agreements) / float64(rep.Total); frac < 0.95 {
		t.Errorf("agreement %.3f < 0.95", frac)
	}
	if frac := float64(rep.WithinOneStep) / float64(rep.Total); frac < 0.98 {
		t.Errorf("within-one-step %.3f < 0.98", frac)
	}
}

func TestAblationIdleSavings(t *testing.T) {
	rep, err := AblationIdle(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Three hot-idle CPUs at 1 GHz burn 3×140 W; the idle signal drops
	// them to 250 MHz (9 W each): ≈390 W saved.
	if rep.SavedW < 300 {
		t.Errorf("idle signal saves only %.0fW", rep.SavedW)
	}
	if rep.BusyThroughputRatio < 0.98 {
		t.Errorf("busy CPU throughput suffered: ratio %.3f", rep.BusyThroughputRatio)
	}
}

func TestRendersAreNonEmpty(t *testing.T) {
	o := TestOptions()
	renders := []func() (string, error){
		func() (string, error) { r, err := Table1(); return render(r, err) },
		func() (string, error) { r, err := Figure1(o); return render(r, err) },
		func() (string, error) { r, err := Table2(o); return render(r, err) },
		func() (string, error) { r, err := Figure4(o); return render(r, err) },
		func() (string, error) { r, err := Figure5(o); return render(r, err) },
		func() (string, error) { r, err := Figure6(o); return render(r, err) },
		func() (string, error) { r, err := Figure7(o); return render(r, err) },
		func() (string, error) { r, err := Table3(o); return render(r, err) },
		func() (string, error) { r, err := Figure8(o); return render(r, err) },
		func() (string, error) { r, err := Figure9(o); return render(r, err) },
		func() (string, error) { r, err := WorkedExample(); return render(r, err) },
		func() (string, error) { r, err := AblationPolicies(); return render(r, err) },
		func() (string, error) { r, err := AblationIdeal(); return render(r, err) },
		func() (string, error) { r, err := AblationIdle(o); return render(r, err) },
		func() (string, error) { r, err := AblationActuator(o); return render(r, err) },
		func() (string, error) { r, err := AblationEpsilon(o); return render(r, err) },
		func() (string, error) { r, err := AblationExecModel(o); return render(r, err) },
		func() (string, error) { r, err := ClusterStudy(o); return render(r, err) },
	}
	for i, f := range renders {
		out, err := f()
		if err != nil {
			t.Errorf("render %d: %v", i, err)
			continue
		}
		if len(out) < 40 {
			t.Errorf("render %d suspiciously short: %q", i, out)
		}
	}
}

type renderer interface{ Render() string }

func render(r renderer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}
