package experiments

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Figure6Point is one (power limit, normalised performance) pair for one
// phase type.
type Figure6Point struct {
	LimitW   float64
	NormPerf float64
}

// Figure6Report reproduces Figure 6 (performance impact of power limits):
// a single-CPU system running a CPU-intensive (100%) and a
// memory-intensive (20%) synthetic phase across a budget sweep from 140 W
// down. Performance is normalised to the full-power run. Memory-intensive
// work shows no degradation until the budget forces the frequency below
// the saturation point; CPU-intensive work degrades slightly less than
// one-to-one with frequency.
type Figure6Report struct {
	CPUIntensive []Figure6Point
	MemIntensive []Figure6Point
	// MemKneeW is the highest budget at which the memory-intensive phase
	// first loses more than 5%.
	MemKneeW float64
}

// Figure6 runs the budget sweep.
func Figure6(o Options) (*Figure6Report, error) {
	limits := []float64{140, 123, 109, 95, 84, 75, 66, 57, 48, 41, 35, 28, 22, 18, 13, 9}
	rep := &Figure6Report{}
	for _, spec := range []struct {
		intensity float64
		out       *[]Figure6Point
	}{
		{100, &rep.CPUIntensive},
		{20, &rep.MemIntensive},
	} {
		prog, err := o.syntheticSingle(spec.intensity, 2.0)
		if err != nil {
			return nil, err
		}
		var base float64
		for _, lim := range limits {
			res, err := o.singleRun(prog, budgetFor(lim), false)
			if err != nil {
				return nil, err
			}
			perf := 1 / res.Seconds
			if lim == 140 {
				base = perf
			}
			*spec.out = append(*spec.out, Figure6Point{LimitW: lim, NormPerf: perf / base})
		}
	}
	for _, p := range rep.MemIntensive {
		if p.NormPerf < 0.95 {
			rep.MemKneeW = p.LimitW
			break
		}
	}
	return rep, nil
}

// Render formats the report.
func (r *Figure6Report) Render() string {
	t := telemetry.Table{
		Title:   "Figure 6: performance vs power limit (normalised to 140W)",
		Headers: []string{"Limit", "Freq cap", "cpu-intensive (100%)", "mem-intensive (20%)"},
	}
	tab := power.PaperTable1()
	for i := range r.CPUIntensive {
		lim := r.CPUIntensive[i].LimitW
		cap, ok := tab.MaxFrequencyUnder(units.Watts(lim))
		capStr := "-"
		if ok {
			capStr = cap.String()
		}
		t.MustAddRow(
			fmt.Sprintf("%.0fW", lim),
			capStr,
			fmt.Sprintf("%.3f", r.CPUIntensive[i].NormPerf),
			fmt.Sprintf("%.3f", r.MemIntensive[i].NormPerf),
		)
	}
	return t.String() + fmt.Sprintf("memory-intensive knee at %.0fW\n", r.MemKneeW)
}
