// Package experiments regenerates every table and figure of the paper's
// evaluation (§7–§8) plus the §5 worked example and three ablations, each
// as a function returning a typed report with a Render method. The cmd/
// experiments binary prints them; bench_test.go at the repository root
// exposes one testing.B benchmark per experiment.
//
// Shape, not absolute numbers: the substrate is a simulator, so each report
// records the qualitative claims that must hold (who wins, where the knees
// are) and the experiment tests assert those.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// Options tunes experiment cost versus fidelity.
type Options struct {
	// Scale multiplies workload lengths (1 = paper-scale multi-second
	// runs; tests use ~0.05).
	Scale workload.AppScale
	// Seed drives all stochastic machine effects.
	Seed int64
	// Quiet disables latency jitter, contention and sensor noise for
	// exact-arithmetic variants.
	Quiet bool
	// MonteCarlo switches the machine to per-block stochastic execution
	// (internal/machine montecarlo.go) instead of the analytic CPI.
	MonteCarlo bool
}

// DefaultOptions is the paper-scale configuration.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 1} }

// TestOptions is the fast configuration used by the test suite.
func TestOptions() Options { return Options{Scale: 0.05, Seed: 1} }

// machineConfig builds a machine config with the experiment options
// applied.
func (o Options) machineConfig(numCPUs int) machine.Config {
	cfg := machine.P630Config()
	cfg.NumCPUs = numCPUs
	cfg.Seed = o.Seed
	cfg.MonteCarloExec = o.MonteCarlo
	if o.Quiet {
		cfg.LatencyJitterSigma = 0
		cfg.MeterNoiseSigma = 0
		cfg.Contention = memhier.Contention{}
		cfg.ThrottleSettle = 0
	}
	return cfg
}

// schedConfig is the prototype scheduler configuration (T = 100 ms,
// t = 10 ms, ε = 5%, Table 1 settings) used throughout §8.
func (o Options) schedConfig() fvsst.Config {
	return fvsst.DefaultConfig()
}

// singleRun executes one program alone on a single-CPU machine under fvsst
// with the given per-CPU power budget (the §8.3/§8.4 configuration: "the
// system configured to use only a single processor"). It returns the
// completion time in simulated seconds, the processor energy, and the
// decision log. maxFreqCap, when non-zero, additionally caps the frequency
// set (the Figure 8 presentation of budgets as frequency caps).
type runResult struct {
	Seconds   float64
	CPUEnergy units.Energy
	Decisions []fvsst.Decision
	Recorder  *telemetry.Recorder
}

func (o Options) singleRun(prog workload.Program, budget units.Power, trace bool) (runResult, error) {
	mcfg := o.machineConfig(1)
	m, err := machine.New(mcfg)
	if err != nil {
		return runResult{}, err
	}
	mix, err := workload.NewMix(prog)
	if err != nil {
		return runResult{}, err
	}
	if err := m.SetMix(0, mix); err != nil {
		return runResult{}, err
	}
	s, err := fvsst.New(o.schedConfig(), m, budget)
	if err != nil {
		return runResult{}, err
	}
	drv := fvsst.NewDriver(m, s)
	if trace {
		drv.Recorder = telemetry.NewRecorder()
		drv.TraceCPU = 0
	}
	total, _ := prog.TotalInstructions()
	// Generous deadline: even at the 250 MHz floor with CPI 12 the run
	// ends within this bound.
	deadline := float64(total)*12/250e6 + 10
	done, err := drv.RunUntilAllDone(deadline)
	if err != nil {
		return runResult{}, err
	}
	if !done {
		return runResult{}, fmt.Errorf("experiments: %s did not finish within %v simulated seconds", prog.Name, deadline)
	}
	comps := m.Completions()
	end := comps[len(comps)-1].At
	return runResult{
		Seconds:   end,
		CPUEnergy: m.CPUEnergy(),
		Decisions: s.Decisions(),
		Recorder:  drv.Recorder,
	}, nil
}

// fixedRun executes a program alone on a single-CPU machine pinned at a
// fixed frequency with no scheduler — the non-fvsst comparison system of
// Table 3 and the frequency sweep of Figure 1.
func (o Options) fixedRun(prog workload.Program, f units.Frequency) (runResult, error) {
	mcfg := o.machineConfig(1)
	m, err := machine.New(mcfg)
	if err != nil {
		return runResult{}, err
	}
	mix, err := workload.NewMix(prog)
	if err != nil {
		return runResult{}, err
	}
	if err := m.SetMix(0, mix); err != nil {
		return runResult{}, err
	}
	if err := m.SetFrequency(0, f); err != nil {
		return runResult{}, err
	}
	total, _ := prog.TotalInstructions()
	deadline := float64(total)*20/f.Hz() + 10
	if !m.RunUntilAllDone(deadline) {
		return runResult{}, fmt.Errorf("experiments: %s at %v did not finish", prog.Name, f)
	}
	comps := m.Completions()
	return runResult{Seconds: comps[len(comps)-1].At, CPUEnergy: m.CPUEnergy()}, nil
}

// syntheticSingle builds a one-phase synthetic program at the given CPU
// intensity, sized to run roughly seconds at 1 GHz.
func (o Options) syntheticSingle(intensity float64, seconds float64) (workload.Program, error) {
	h := memhier.P630()
	probe, err := workload.SyntheticIntensityPhase("probe", intensity, 1000, h)
	if err != nil {
		return workload.Program{}, err
	}
	// Floor the run length at ~1 s so the scheduler reaches steady state
	// (≥10 scheduling periods) even at test scale.
	span := seconds * float64(o.Scale)
	if span < 1.0 {
		span = 1.0
	}
	instr := workload.InstructionsForDuration(probe, h, 1e9, span)
	phase, err := workload.SyntheticIntensityPhase(
		fmt.Sprintf("cpu%.0f", intensity), intensity, instr, h)
	if err != nil {
		return workload.Program{}, err
	}
	return workload.Program{
		Name:   fmt.Sprintf("synthetic-%.0f", intensity),
		Phases: []workload.Phase{phase},
	}, nil
}

// budgetFor converts the paper's "power limit" wattages into scheduler
// budgets (they are per-processor CPU budgets in the single-CPU studies).
func budgetFor(w float64) units.Power { return units.Watts(w) }

// phaseAt is one time-stamped phase-name observation of the benchmark job.
type phaseAt struct {
	t    float64
	name string
}

// tracedRunOn runs prog on CPU benchCPU of a numCPUs machine under fvsst
// with full telemetry and a per-quantum phase trace of the benchmark job —
// the shared machinery behind the Table 2, Figure 5 and Figure 9 studies.
func (o Options) tracedRunOn(numCPUs, benchCPU int, prog workload.Program, budget units.Power) (runResult, []phaseAt, error) {
	mcfg := o.machineConfig(numCPUs)
	m, err := machine.New(mcfg)
	if err != nil {
		return runResult{}, nil, err
	}
	mix, err := workload.NewMix(prog)
	if err != nil {
		return runResult{}, nil, err
	}
	if err := m.SetMix(benchCPU, mix); err != nil {
		return runResult{}, nil, err
	}
	s, err := fvsst.New(o.schedConfig(), m, budget)
	if err != nil {
		return runResult{}, nil, err
	}
	drv := fvsst.NewDriver(m, s)
	drv.Recorder = telemetry.NewRecorder()
	drv.TraceCPU = benchCPU

	var trace []phaseAt
	job := mix.Jobs()[0]
	total, _ := prog.TotalInstructions()
	deadline := float64(total)*12/250e6 + 10
	for m.Now() < deadline && !m.AllJobsDone() {
		if err := drv.Step(); err != nil {
			return runResult{}, nil, err
		}
		name := "done"
		if !job.Done() {
			name = job.Current().Name
		}
		trace = append(trace, phaseAt{t: m.Now(), name: name})
	}
	if !m.AllJobsDone() {
		return runResult{}, nil, fmt.Errorf("experiments: %s did not finish within %v simulated seconds", prog.Name, deadline)
	}
	comps := m.Completions()
	return runResult{
		Seconds:   comps[len(comps)-1].At,
		CPUEnergy: m.CPUEnergy(),
		Decisions: s.Decisions(),
		Recorder:  drv.Recorder,
	}, trace, nil
}

// tracedRun is tracedRunOn for the single-CPU configuration of §8.3.
func (o Options) tracedRun(prog workload.Program, budget units.Power) (runResult, []phaseAt, error) {
	return o.tracedRunOn(1, 0, prog, budget)
}

// CSVWriter is implemented by reports that carry full traces worth
// exporting for external plotting.
type CSVWriter interface {
	WriteCSVTo(dir string) error
}

// writeCSVFile writes one recorder to dir/name.
func writeCSVFile(dir, name string, rec *telemetry.Recorder) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.WriteCSV(f)
}

// Table1Budgets are the three operating budgets of Table 3 / §8.4.
var Table1Budgets = []float64{140, 75, 35}
