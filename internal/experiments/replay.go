package experiments

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/fvsst"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/scenario"
	"repro/internal/units"
)

// ReplayedPass is one re-decided scheduling pass: the counterfactual
// Steps 1–3 outcome computed from the recorded observation windows. The
// MHz/V conventions match obs.CPUTrace so an unperturbed replay can be
// compared field-for-field against the recorded decision.
type ReplayedPass struct {
	At          float64   `json:"t"`
	DesiredMHz  []float64 `json:"desired_mhz"`
	ActualMHz   []float64 `json:"actual_mhz"`
	VoltageV    []float64 `json:"voltage_v"`
	BudgetMet   bool      `json:"budget_met"`
	Loss        float64   `json:"loss"`
	TablePowerW float64   `json:"table_power_w"`
}

// ReplayResult aggregates a replayed trace. EnergyProxyJ integrates
// table power over the schedule period — the open-loop analogue of the
// driver's energy ledger (replay cannot re-run the machines, so the
// table is the best available proxy).
type ReplayResult struct {
	Passes       []ReplayedPass `json:"passes"`
	Skipped      int            `json:"skipped,omitempty"`
	TotalLoss    float64        `json:"total_loss"`
	EnergyProxyJ float64        `json:"energy_proxy_j"`
}

// ReplayDecisions re-runs Steps 1–3 over the recorded passes of a
// decision trace (obs.ReadDecisions) under perturbed policy knobs —
// the open-loop arm of the counterfactual harness. With zero knobs the
// replay reproduces the recorded desired/actual/voltage decisions to
// the byte: Step 1 re-decomposes the recorded counter windows, the
// budget is recovered exactly as BudgetW − ReservedW, and the greedy
// allocator is the same code path the schedulers run. Passes without
// recorded observations (obs.Replayable false) are counted in Skipped.
func ReplayDecisions(events []obs.Event, cfg fvsst.Config, knobs scenario.PolicyKnobs) (*ReplayResult, error) {
	pred, err := perfmodel.New(cfg.Hier)
	if err != nil {
		return nil, err
	}
	eps := cfg.Epsilon
	if knobs.Epsilon > 0 {
		eps = knobs.Epsilon
	}
	type procKey struct {
		node string
		cpu  int
	}
	held := map[procKey]int{}
	last := map[procKey]int{}
	run := map[procKey]int{}
	var grid perfmodel.PredGrid
	set := cfg.Table.Frequencies()
	period := cfg.SamplePeriod * float64(cfg.SchedulePeriods)
	res := &ReplayResult{}
	for _, ev := range events {
		if ev.Type != obs.EventSchedule {
			continue
		}
		if !obs.Replayable(ev) {
			res.Skipped++
			continue
		}
		n := len(ev.CPUs)
		grid.Reset(n, set)
		nf := grid.NumFreqs()
		desired := make([]int, n)
		for i, ct := range ev.CPUs {
			switch {
			case cfg.UseIdleSignal && ct.Idle:
				desired[i] = 0
			case ct.Obs == nil:
				desired[i] = nf - 1
			default:
				o := ct.Obs
				dec, err := pred.Decompose(perfmodel.Observation{
					Delta: counters.Delta{
						Window:       o.WindowS,
						Instructions: o.Instructions,
						Cycles:       o.Cycles,
						HaltedCycles: o.HaltedCycles,
						L2Refs:       o.L2Refs,
						L3Refs:       o.L3Refs,
						MemRefs:      o.MemRefs,
					},
					Freq: units.Frequency(o.FreqHz),
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: replay t=%v cpu %d: %w", ev.At, ct.CPU, err)
				}
				grid.Fill(i, dec)
				desired[i] = fvsst.EpsilonIndexGrid(&grid, i, eps)
			}
		}
		if k := knobs.DebouncePasses; k >= 2 {
			for i, ct := range ev.CPUs {
				ref := procKey{ct.Node, ct.CPU}
				cand := desired[i]
				h, seen := held[ref]
				switch {
				case !seen:
					h = cand
				case cand == h:
					run[ref] = 0
				default:
					if cand == last[ref] {
						run[ref]++
					} else {
						run[ref] = 1
					}
					if run[ref] >= k {
						h = cand
						run[ref] = 0
					}
				}
				last[ref] = cand
				held[ref] = h
				desired[i] = h
			}
		}
		budget := units.Watts(ev.BudgetW - ev.ReservedW)
		idx, met, err := scenario.Allocate(knobs.Allocator, &grid, desired, cfg.Table, budget)
		if err != nil {
			return nil, err
		}
		rp := ReplayedPass{
			At:         ev.At,
			BudgetMet:  met,
			DesiredMHz: make([]float64, n),
			ActualMHz:  make([]float64, n),
			VoltageV:   make([]float64, n),
		}
		var tablePower units.Power
		for i, k := range idx {
			rp.DesiredMHz[i] = cfg.Table.FrequencyAtIndex(desired[i]).MHz()
			rp.ActualMHz[i] = cfg.Table.FrequencyAtIndex(k).MHz()
			rp.VoltageV[i] = cfg.Table.VoltageAtIndex(k).V()
			if grid.Valid(i) {
				rp.Loss += grid.Loss(i, k)
			}
			tablePower += cfg.Table.PowerAtIndex(k)
		}
		rp.TablePowerW = tablePower.W()
		res.TotalLoss += rp.Loss
		res.EnergyProxyJ += rp.TablePowerW * period
		res.Passes = append(res.Passes, rp)
	}
	return res, nil
}
