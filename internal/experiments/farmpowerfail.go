package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/farm"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// The farm power-fail study scales the paper's §2 motivating scenario —
// "a power supply fails and the computers must temporarily reduce their
// consumption" — from one machine room to a three-cluster farm on a UPS:
// the grid feed fails at t=1 s and the farm runs from a battery whose
// runway governor shrinks the global budget as it drains. Three policies
// divide that shrinking budget:
//
//   - hierarchical: the farm.Allocator (the paper's Step-2 least-loss
//     greedy lifted one level) reallocating across clusters by marginal
//     predicted loss, with expiring leases;
//   - equal-split: the same lease machinery but every reachable cluster
//     gets an equal share;
//   - uniform: every processor in the farm pinned at the highest common
//     frequency fitting the budget (the classic response), with an
//     instantly-reacting, partition-immune controller — a generous
//     baseline.
//
// Mid-run the "data" cluster partitions away from the allocator for two
// seconds: its lease expires, it falls to its floor on its own, and the
// allocator keeps charging first the stale lease and then the floor, so
// Σ(leased) ≤ budget must hold right through the partition.

const (
	farmGridW     = 6720.0 // 48 processors × the 140 W table maximum
	farmUPSJoules = 12000.0
	farmRunwaySec = 5.0
	farmFailAt    = 1.0
	farmPartStart = 2.5
	farmPartEnd   = 4.5
	farmDuration  = 5.0
	farmLeaseTTL  = 0.3
	farmSafety    = farmLeaseTTL / farmRunwaySec
	farmPeriods   = 10 // allocator pass every 10 dispatch quanta = 0.1 s
	// farmRunwayGrace is how long after the failover the runway metric
	// waits for the reallocation and RTT-delayed actuations to land.
	farmRunwayGrace = 0.2
)

// farmClusterSpec shapes one cluster: 4 nodes, busyCPUs of each node's 4
// processors running an endless copy of prog.
type farmClusterSpec struct {
	name     string
	prog     workload.Program
	busyCPUs int
	seedOff  int64
}

// farmSpecs is the fixed scenario: a CPU-bound compute cluster that wants
// all the power, a memory-bound data cluster that barely profits from
// frequency, and a mostly-idle web cluster.
func farmSpecs() []farmClusterSpec {
	cpu := workload.Program{Name: "compute", Phases: []workload.Phase{{
		Name: "steady", Alpha: 1.4, Instructions: 1e15,
	}}}
	mem := workload.Program{Name: "data", Phases: []workload.Phase{{
		Name: "steady", Alpha: 1.1,
		Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.0186},
		Instructions: 1e15,
	}}}
	return []farmClusterSpec{
		{name: "compute", prog: cpu, busyCPUs: 4, seedOff: 100},
		{name: "data", prog: mem, busyCPUs: 4, seedOff: 200},
		{name: "web", prog: cpu, busyCPUs: 1, seedOff: 300},
	}
}

// farmNodes builds one cluster's four nodes with deterministic per-node
// seeds.
func (o Options) farmNodes(spec farmClusterSpec) ([]*cluster.Node, error) {
	var nodes []*cluster.Node
	for j := 0; j < 4; j++ {
		mcfg := o.machineConfig(4)
		mcfg.Seed = o.Seed + spec.seedOff + int64(j)
		mcfg.Name = fmt.Sprintf("%s-%d", spec.name, j)
		m, err := machine.New(mcfg)
		if err != nil {
			return nil, err
		}
		for cpu := 0; cpu < spec.busyCPUs; cpu++ {
			mix, err := workload.NewMix(spec.prog)
			if err != nil {
				return nil, err
			}
			if err := m.SetMix(cpu, mix); err != nil {
				return nil, err
			}
		}
		nodes = append(nodes, &cluster.Node{Name: mcfg.Name, M: m, RTT: 0.002})
	}
	return nodes, nil
}

// farmSource builds the grid→UPS failover source; the *UPS is returned
// for draining and runway checks.
func farmSource() (farm.BudgetSource, *farm.UPS, error) {
	ups, err := farm.NewUPS(units.Joules(farmUPSJoules), farmRunwaySec)
	if err != nil {
		return nil, nil, err
	}
	return farm.Failover{
		At:     farmFailAt,
		Before: farm.Static(units.Watts(farmGridW)),
		After:  ups,
	}, ups, nil
}

// FarmPolicyOutcome is one policy's run of the scenario.
type FarmPolicyOutcome struct {
	Policy string
	// LossSeconds is the time integral of the aggregate predicted
	// performance loss (Σ over processors, per the shared prediction
	// grid), in loss·seconds — lower is better.
	LossSeconds float64
	// ClusterLoss splits LossSeconds by cluster.
	ClusterLoss map[string]float64
	// OvershootSec is how long Σ(charged budgets) exceeded the global
	// budget — the conservation invariant's failure time, which must be
	// zero.
	OvershootSec float64
	// MinRunwaySec is the worst instantaneous UPS runway (remaining
	// energy / measured draw) after the failover settles.
	MinRunwaySec float64
	// RunwayMet reports the battery sustained ≈ the configured runway
	// throughout and never emptied.
	RunwayMet bool
	// UPSRemainingJ is the energy left at the end of the run.
	UPSRemainingJ float64
	// Reallocs / BudgetReallocs / LeaseExpiries count the allocator's
	// trace events (zero for the allocator-less uniform policy).
	Reallocs       int
	BudgetReallocs int
	LeaseExpiries  int
}

// farmAllocRun runs the scenario under the farm allocator with the given
// division policy.
func (o Options) farmAllocRun(policy farm.Policy) (FarmPolicyOutcome, error) {
	specs := farmSpecs()
	src, ups, err := farmSource()
	if err != nil {
		return FarmPolicyOutcome{}, err
	}
	sink := &obs.Buffer{}
	metrics := farm.NewMetrics()

	cfg := o.schedConfig()
	cfg.UseIdleSignal = true
	coords := make([]*cluster.Coordinator, len(specs))
	holders := make([]*farm.Holder, len(specs))
	members := make([]farm.Member, len(specs))
	quantum := 0.0
	for ci, spec := range specs {
		nodes, err := o.farmNodes(spec)
		if err != nil {
			return FarmPolicyOutcome{}, err
		}
		quantum = nodes[0].M.Config().Quantum
		c, err := cluster.New(cfg, units.Watts(farmGridW/3), nodes...)
		if err != nil {
			return FarmPolicyOutcome{}, err
		}
		floor := c.FloorPower()
		h, err := farm.NewHolder(spec.name, floor, sink, metrics)
		if err != nil {
			return FarmPolicyOutcome{}, err
		}
		c.SetBudgetSource(h)
		coords[ci] = c
		holders[ci] = h
		members[ci] = farm.Member{Name: spec.name, Floor: floor}
	}

	alloc, err := farm.NewAllocator(farm.AllocatorConfig{
		Source:   src,
		Members:  members,
		Periods:  farmPeriods,
		LeaseTTL: farmLeaseTTL,
		Safety:   farmSafety,
		Policy:   policy,
		Sink:     sink,
		Metrics:  metrics,
	})
	if err != nil {
		return FarmPolicyOutcome{}, err
	}

	partitioned := func(ci int, now float64) bool {
		return specs[ci].name == "data" && now >= farmPartStart && now < farmPartEnd
	}
	gather := func(now float64) ([]farm.Demand, error) {
		demands := make([]farm.Demand, len(coords))
		for ci, c := range coords {
			if partitioned(ci, now) {
				continue
			}
			curve, err := c.DemandCurve()
			if err != nil {
				return nil, err
			}
			demands[ci] = farm.Demand{Curve: curve, Reachable: true}
		}
		return demands, nil
	}
	pass := func(now float64, trigger string) error {
		demands, err := gather(now)
		if err != nil {
			return err
		}
		a, err := alloc.Allocate(now, trigger, demands)
		if err != nil {
			return err
		}
		for _, l := range a.Leases {
			for ci := range specs {
				if specs[ci].name == l.Member {
					holders[ci].Grant(l)
				}
			}
		}
		return nil
	}

	out := FarmPolicyOutcome{
		Policy:       string(policy),
		ClusterLoss:  map[string]float64{},
		MinRunwaySec: math.Inf(1),
	}
	tl := engine.NewTimeline()
	met, err := engine.NewMetronome(tl, quantum, farmPeriods)
	if err != nil {
		return FarmPolicyOutcome{}, err
	}
	if err := pass(0, "initial"); err != nil {
		return FarmPolicyOutcome{}, err
	}
	steps := int(farmDuration/quantum + 0.5)
	for i := 0; i < steps; i++ {
		now := float64(i) * quantum
		if i > 0 {
			if err := tl.AdvanceTo(now); err != nil {
				return FarmPolicyOutcome{}, err
			}
			if trig, due := alloc.Trigger(now, met.TakeDue()); due {
				if err := pass(now, trig); err != nil {
					return FarmPolicyOutcome{}, err
				}
			}
		}
		if float64(alloc.Charged(now)) > float64(src.BudgetAt(now))*(1+1e-9) {
			out.OvershootSec += quantum
		}
		var draw units.Power
		for ci, c := range coords {
			if err := c.Step(); err != nil {
				return FarmPolicyOutcome{}, err
			}
			p := c.TotalCPUPower()
			draw += p
			metrics.SetUsed(specs[ci].name, p)
			if d, ok := c.LastDecision(); ok {
				var loss float64
				for _, as := range d.Assignments {
					loss += as.PredictedLoss
				}
				out.ClusterLoss[specs[ci].name] += loss * quantum
				out.LossSeconds += loss * quantum
			}
		}
		if now >= farmFailAt {
			if err := ups.Drain(draw, quantum); err != nil {
				return FarmPolicyOutcome{}, err
			}
			if now >= farmFailAt+farmRunwayGrace {
				if r := ups.RunwayAt(now+quantum, draw); r < out.MinRunwaySec {
					out.MinRunwaySec = r
				}
			}
		}
	}
	out.UPSRemainingJ = ups.Remaining().J()
	out.RunwayMet = !ups.Empty() && out.MinRunwaySec >= farmRunwaySec-farmRunwayGrace
	out.Reallocs = sink.Count(obs.EventRealloc, "")
	out.BudgetReallocs = sink.Count(obs.EventRealloc, "budget-change")
	out.LeaseExpiries = sink.Count(obs.EventLeaseExpire, "")
	return out, nil
}

// farmUniformRun is the allocator-less baseline: every processor in the
// farm pinned each quantum at the highest common frequency whose 48-way
// table power fits the budget. It reacts instantly (no leases, no RTT)
// and ignores the partition — advantages the real policies don't get.
func (o Options) farmUniformRun() (FarmPolicyOutcome, error) {
	specs := farmSpecs()
	src, ups, err := farmSource()
	if err != nil {
		return FarmPolicyOutcome{}, err
	}
	cfg := o.schedConfig()
	cfg.UseIdleSignal = true
	core, err := cluster.NewCore(cfg)
	if err != nil {
		return FarmPolicyOutcome{}, err
	}
	table := cfg.Table

	type uniNode struct {
		cluster int
		m       *machine.Machine
		sampler *counters.Sampler
	}
	var nodes []uniNode
	nProcs := 0
	quantum := 0.0
	for ci, spec := range specs {
		ns, err := o.farmNodes(spec)
		if err != nil {
			return FarmPolicyOutcome{}, err
		}
		for _, n := range ns {
			quantum = n.M.Config().Quantum
			s, err := counters.NewSampler(n.M, 4*cfg.SchedulePeriods)
			if err != nil {
				return FarmPolicyOutcome{}, err
			}
			nodes = append(nodes, uniNode{cluster: ci, m: n.M, sampler: s})
			nProcs += n.M.NumCPUs()
		}
	}

	pinIndex := func(budget units.Power) int {
		fi := 0
		for i := 0; i < table.Len(); i++ {
			if float64(table.PowerAtIndex(i))*float64(nProcs) <= float64(budget) {
				fi = i
			} else {
				break
			}
		}
		return fi
	}
	// inputs assembles one cluster's ProcInputs from the samplers, over
	// the same aggregation window the coordinators use (without their RTT
	// staleness — the baseline sees fresher data than the real policies).
	inputs := func(ci int) []cluster.ProcInput {
		var out []cluster.ProcInput
		for ni, n := range nodes {
			if n.cluster != ci {
				continue
			}
			for cpu := 0; cpu < n.m.NumCPUs(); cpu++ {
				in := cluster.ProcInput{Proc: cluster.ProcRef{Node: ni, CPU: cpu}, Node: n.m.Config().Name}
				if n.m.IsIdle(cpu) {
					in.Idle = true
				} else {
					var agg counters.Delta
					hist := n.sampler.History(cpu)
					for k := 0; k < hist.Len() && k < cfg.SchedulePeriods; k++ {
						agg = agg.Add(hist.Last(k))
					}
					if fHz := agg.ObservedFrequencyHz(); agg.Instructions > 0 && agg.Cycles > 0 && fHz > 0 {
						o := perfmodel.Observation{Delta: agg, Freq: units.Frequency(fHz)}
						in.Obs = &o
					}
				}
				out = append(out, in)
			}
		}
		return out
	}

	out := FarmPolicyOutcome{
		Policy:       "uniform",
		ClusterLoss:  map[string]float64{},
		MinRunwaySec: math.Inf(1),
	}
	lossNow := make([]float64, len(specs))
	lastFi := -1
	steps := int(farmDuration/quantum + 0.5)
	for i := 0; i < steps; i++ {
		now := float64(i) * quantum
		budget := src.BudgetAt(now)
		fi := pinIndex(budget)
		if fi != lastFi {
			f := table.FrequencyAtIndex(fi)
			for _, n := range nodes {
				for cpu := 0; cpu < n.m.NumCPUs(); cpu++ {
					if err := n.m.SetFrequency(cpu, f); err != nil {
						return FarmPolicyOutcome{}, err
					}
				}
			}
			lastFi = fi
		}
		if i%farmPeriods == 0 {
			for ci := range specs {
				l, err := core.UniformLoss(inputs(ci), fi)
				if err != nil {
					return FarmPolicyOutcome{}, err
				}
				lossNow[ci] = l
			}
		}
		charged := units.Power(float64(table.PowerAtIndex(fi)) * float64(nProcs))
		if float64(charged) > float64(budget)*(1+1e-9) {
			out.OvershootSec += quantum
		}
		var draw units.Power
		for _, n := range nodes {
			n.m.Step()
			if err := n.sampler.Collect(); err != nil {
				return FarmPolicyOutcome{}, err
			}
			draw += n.m.TotalCPUPower()
		}
		for ci, spec := range specs {
			out.ClusterLoss[spec.name] += lossNow[ci] * quantum
			out.LossSeconds += lossNow[ci] * quantum
		}
		if now >= farmFailAt {
			if err := ups.Drain(draw, quantum); err != nil {
				return FarmPolicyOutcome{}, err
			}
			if now >= farmFailAt+farmRunwayGrace {
				if r := ups.RunwayAt(now+quantum, draw); r < out.MinRunwaySec {
					out.MinRunwaySec = r
				}
			}
		}
	}
	out.UPSRemainingJ = ups.Remaining().J()
	out.RunwayMet = !ups.Empty() && out.MinRunwaySec >= farmRunwaySec-farmRunwayGrace
	return out, nil
}

// FarmPowerFailReport compares the three policies over the scenario.
type FarmPowerFailReport struct {
	GridW        float64
	UPSJoules    float64
	RunwaySec    float64
	FailAt       float64
	PartStart    float64
	PartEnd      float64
	Duration     float64
	Hierarchical FarmPolicyOutcome
	EqualSplit   FarmPolicyOutcome
	Uniform      FarmPolicyOutcome
}

// FarmPowerFail runs the farm power-fail study.
func FarmPowerFail(o Options) (*FarmPowerFailReport, error) {
	hier, err := o.farmAllocRun(farm.PolicyLeastLoss)
	if err != nil {
		return nil, err
	}
	hier.Policy = "hierarchical"
	equal, err := o.farmAllocRun(farm.PolicyEqualSplit)
	if err != nil {
		return nil, err
	}
	uni, err := o.farmUniformRun()
	if err != nil {
		return nil, err
	}
	return &FarmPowerFailReport{
		GridW:        farmGridW,
		UPSJoules:    farmUPSJoules,
		RunwaySec:    farmRunwaySec,
		FailAt:       farmFailAt,
		PartStart:    farmPartStart,
		PartEnd:      farmPartEnd,
		Duration:     farmDuration,
		Hierarchical: hier,
		EqualSplit:   equal,
		Uniform:      uni,
	}, nil
}

// Outcomes returns the three policies in presentation order.
func (r *FarmPowerFailReport) Outcomes() []FarmPolicyOutcome {
	return []FarmPolicyOutcome{r.Hierarchical, r.EqualSplit, r.Uniform}
}

// Render formats the report.
func (r *FarmPowerFailReport) Render() string {
	t := telemetry.Table{
		Title: fmt.Sprintf(
			"Farm power-fail: 3 clusters × 4 nodes × 4 CPUs; grid %.0fW fails at t=%.0fs onto a %.0fJ UPS (%.0fs runway); \"data\" partitioned t∈[%.1f,%.1f)s",
			r.GridW, r.FailAt, r.UPSJoules, r.RunwaySec, r.PartStart, r.PartEnd),
		Headers: []string{"Policy", "loss·s", "compute", "data", "web", "overshoot", "min runway", "UPS left"},
	}
	for _, p := range r.Outcomes() {
		t.MustAddRow(p.Policy,
			fmt.Sprintf("%.3f", p.LossSeconds),
			fmt.Sprintf("%.3f", p.ClusterLoss["compute"]),
			fmt.Sprintf("%.3f", p.ClusterLoss["data"]),
			fmt.Sprintf("%.3f", p.ClusterLoss["web"]),
			fmt.Sprintf("%.2fs", p.OvershootSec),
			fmt.Sprintf("%.2fs", p.MinRunwaySec),
			fmt.Sprintf("%.0fJ", p.UPSRemainingJ))
	}
	return t.String() + fmt.Sprintf(
		"hierarchical: %d reallocations (%d budget-change), %d lease expiries; runway met: %v/%v/%v\n",
		r.Hierarchical.Reallocs, r.Hierarchical.BudgetReallocs, r.Hierarchical.LeaseExpiries,
		r.Hierarchical.RunwayMet, r.EqualSplit.RunwayMet, r.Uniform.RunwayMet)
}
