package experiments

import (
	"strings"
	"testing"
)

// TestFarmPowerFail is the acceptance check for the farm study: the
// hierarchical allocator meets the UPS runway with strictly lower
// aggregate predicted loss than both baselines, never overshoots the
// shrinking budget (even across the data cluster's partition, which must
// expire at least one lease), and renders deterministically.
func TestFarmPowerFail(t *testing.T) {
	r, err := FarmPowerFail(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, e, u := r.Hierarchical, r.EqualSplit, r.Uniform

	if !(h.LossSeconds < e.LossSeconds) {
		t.Errorf("hierarchical loss %.3f not below equal-split %.3f", h.LossSeconds, e.LossSeconds)
	}
	if !(h.LossSeconds < u.LossSeconds) {
		t.Errorf("hierarchical loss %.3f not below uniform %.3f", h.LossSeconds, u.LossSeconds)
	}
	for _, p := range []FarmPolicyOutcome{h, e} {
		if p.OvershootSec != 0 {
			t.Errorf("%s: %v s of budget overshoot, want 0 (conservation invariant)", p.Policy, p.OvershootSec)
		}
	}
	if !h.RunwayMet {
		t.Errorf("hierarchical runway not met: min runway %.2fs of %.0fs, UPS left %.0fJ",
			h.MinRunwaySec, r.RunwaySec, h.UPSRemainingJ)
	}
	if h.LeaseExpiries < 1 {
		t.Errorf("%d lease expiries, want ≥ 1 (the data cluster's lease must lapse during the partition)", h.LeaseExpiries)
	}
	if h.Reallocs < int(r.Duration/0.1)/2 {
		t.Errorf("only %d reallocations over %.0fs", h.Reallocs, r.Duration)
	}
	if h.BudgetReallocs < 1 {
		t.Errorf("no budget-change reallocation despite the UPS governor shrinking the budget")
	}
	out := r.Render()
	for _, want := range []string{"hierarchical", "equal-split", "uniform", "lease expiries"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestFarmPowerFailDeterministic: the full report is byte-identical
// across runs with the same options.
func TestFarmPowerFailDeterministic(t *testing.T) {
	a, err := FarmPowerFail(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FarmPowerFail(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Errorf("renders differ:\n--- first\n%s\n--- second\n%s", a.Render(), b.Render())
	}
}
