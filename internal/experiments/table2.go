package experiments

import (
	"fmt"
	"math"

	"repro/internal/memhier"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// Table2Row is the predictor IPC deviation of one synthetic intensity:
// mean |predicted − observed| IPC per scheduling window, per CPU, plus the
// CPU3* column that excludes the benchmark's initialisation and
// termination phases.
type Table2Row struct {
	IntensityPct float64
	DevCPU       [4]float64
	DevCPU3Star  float64
	Windows      int
}

// Table2Report reproduces Table 2 (predictor error): the benchmark runs on
// CPU 3, CPUs 0–2 run the hot idle loop, and prediction accuracy is
// evaluated window against following window.
type Table2Report struct {
	Rows []Table2Row
}

// table2Program builds the synthetic benchmark with erratic init and exit
// phases: real initialisation (allocating and touching a multi-GB
// footprint) thrashes between memory- and CPU-bound behaviour faster than
// a scheduling window, which is exactly what defeats the one-window
// predictor and produces the paper's large CPU3-minus-CPU3* gap.
func table2Program(o Options, intensity float64) (workload.Program, error) {
	h := memhier.P630()
	mk := func(name string, in float64, seconds float64) (workload.Phase, error) {
		probe, err := workload.SyntheticIntensityPhase(name, in, 1000, h)
		if err != nil {
			return workload.Phase{}, err
		}
		instr := workload.InstructionsForDuration(probe, h, 1e9, seconds)
		return workload.SyntheticIntensityPhase(name, in, instr, h)
	}
	var phases []workload.Phase
	// Init: 8 alternating ~40 ms micro-phases (shorter than T = 100 ms).
	for i := 0; i < 8; i++ {
		in := 5.0
		if i%2 == 1 {
			in = 95
		}
		ph, err := mk("init", in, 0.04*float64(o.Scale)+0.02)
		if err != nil {
			return workload.Program{}, err
		}
		phases = append(phases, ph)
	}
	// Measurement: two phases at the row's intensity.
	for i := 0; i < 2; i++ {
		ph, err := mk(fmt.Sprintf("main%d", i), intensity, 1.5*float64(o.Scale)+0.3)
		if err != nil {
			return workload.Program{}, err
		}
		phases = append(phases, ph)
	}
	// Exit: 4 alternating micro-phases.
	for i := 0; i < 4; i++ {
		in := 90.0
		if i%2 == 1 {
			in = 10
		}
		ph, err := mk("exit", in, 0.04*float64(o.Scale)+0.02)
		if err != nil {
			return workload.Program{}, err
		}
		phases = append(phases, ph)
	}
	return workload.Program{Name: fmt.Sprintf("table2-%.0f", intensity), Phases: phases}, nil
}

// Table2 runs the predictor-accuracy study.
func Table2(o Options) (*Table2Report, error) {
	rep := &Table2Report{}
	for _, intensity := range []float64{100, 75, 50, 25} {
		row, err := table2Row(o, intensity)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func table2Row(o Options, intensity float64) (Table2Row, error) {
	prog, err := table2Program(o, intensity)
	if err != nil {
		return Table2Row{}, err
	}
	res, trace, err := o.tracedRunOn(4, 3, prog, units.Watts(560))
	if err != nil {
		return Table2Row{}, err
	}

	phaseNameAt := func(t float64) string {
		for _, p := range trace {
			if p.t >= t {
				return p.name
			}
		}
		return "done"
	}

	// Deviation: the decision at window i predicts the IPC of window i+1;
	// compare against window i+1's observation.
	decisions := res.Decisions
	row := Table2Row{IntensityPct: intensity}
	var sums [4]float64
	var counts [4]int
	var sumStar float64
	var countStar int
	for i := 1; i < len(decisions); i++ {
		prev, cur := decisions[i-1], decisions[i]
		for cpu := 0; cpu < 4; cpu++ {
			pred := prev.Assignments[cpu].PredictedIPC
			obs := cur.Assignments[cpu].ObservedIPC
			if pred == 0 || obs == 0 {
				continue
			}
			dev := math.Abs(pred - obs)
			sums[cpu] += dev
			counts[cpu]++
			if cpu == 3 {
				name := phaseNameAt(cur.At)
				if name != "init" && name != "exit" && name != "done" {
					sumStar += dev
					countStar++
				}
			}
		}
	}
	for cpu := 0; cpu < 4; cpu++ {
		if counts[cpu] > 0 {
			row.DevCPU[cpu] = sums[cpu] / float64(counts[cpu])
		}
	}
	if countStar > 0 {
		row.DevCPU3Star = sumStar / float64(countStar)
	}
	row.Windows = counts[3]
	return row, nil
}

// Render formats the report.
func (r *Table2Report) Render() string {
	t := telemetry.Table{
		Title:   "Table 2: predictor error (mean |predicted−observed| IPC per window)",
		Headers: []string{"CPU intensity", "CPU0", "CPU1", "CPU2", "CPU3", "CPU3*"},
	}
	for _, row := range r.Rows {
		t.MustAddRow(
			fmt.Sprintf("%.0f", row.IntensityPct),
			fmt.Sprintf("%.3f", row.DevCPU[0]),
			fmt.Sprintf("%.3f", row.DevCPU[1]),
			fmt.Sprintf("%.3f", row.DevCPU[2]),
			fmt.Sprintf("%.3f", row.DevCPU[3]),
			fmt.Sprintf("%.3f", row.DevCPU3Star),
		)
	}
	return t.String() + "CPU3* excludes initialisation and termination phases.\n"
}
