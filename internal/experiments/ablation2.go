package experiments

import (
	"fmt"
	"sort"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// AblationMaskingReport quantifies the §5 caveat: "the use of aggregate
// performance counter data on each processor may mask the presence of a
// high CPU-intensity application among many memory-intensive applications.
// A reduced frequency in such a case will produce a larger performance
// loss than predicted." One CPU multiprograms one CPU-bound job with three
// memory-bound jobs; the scheduler sees only the aggregate.
type AblationMaskingReport struct {
	// ChosenMHz is the frequency the scheduler settled on for the mix.
	ChosenMHz float64
	// AggregatePredictedLoss is the loss the scheduler believed it was
	// accepting (must be < ε).
	AggregatePredictedLoss float64
	// PerJobTrueLoss maps each job to the loss *that job* actually
	// suffers at the chosen frequency.
	PerJobTrueLoss map[string]float64
	// MaskedJob is the job whose true loss most exceeds the aggregate
	// prediction.
	MaskedJob     string
	MaskedJobLoss float64
	Epsilon       float64
}

// jobDecomposition folds a program's phases into one instruction-weighted
// decomposition (its "true" average behaviour).
func jobDecomposition(p workload.Program, o Options) (perfmodel.Decomposition, error) {
	h := o.machineConfig(1).Hier
	var instr, invAlphaW, stallW float64
	for _, ph := range p.Phases {
		w := float64(ph.Instructions)
		instr += w
		invAlphaW += w * (1/ph.Alpha + ph.NonMemStallCyclesPerInstr)
		stallW += w * ph.StallTimePerInstr(h)
	}
	if instr == 0 {
		return perfmodel.Decomposition{}, fmt.Errorf("experiments: empty program %s", p.Name)
	}
	return perfmodel.Decomposition{
		InvAlpha:         invAlphaW / instr,
		StallSecPerInstr: stallW / instr,
	}, nil
}

// AblationMasking runs the multiprogramming study.
func AblationMasking(o Options) (*AblationMaskingReport, error) {
	h := o.machineConfig(1).Hier
	mkSynth := func(name string, intensity, seconds float64) (workload.Program, error) {
		probe, err := workload.SyntheticIntensityPhase(name, intensity, 1000, h)
		if err != nil {
			return workload.Program{}, err
		}
		span := seconds * float64(o.Scale)
		if span < 0.5 {
			span = 0.5
		}
		instr := workload.InstructionsForDuration(probe, h, 1e9, span)
		phase, err := workload.SyntheticIntensityPhase(name, intensity, instr, h)
		if err != nil {
			return workload.Program{}, err
		}
		return workload.Program{Name: name, Phases: []workload.Phase{phase}}, nil
	}
	cpuJob, err := mkSynth("cpu-job", 100, 2)
	if err != nil {
		return nil, err
	}
	var progs []workload.Program
	progs = append(progs, cpuJob)
	for i := 0; i < 3; i++ {
		memJob, err := mkSynth(fmt.Sprintf("mem-job%d", i), 10, 2)
		if err != nil {
			return nil, err
		}
		progs = append(progs, memJob)
	}

	mcfg := o.machineConfig(1)
	m, err := machine.New(mcfg)
	if err != nil {
		return nil, err
	}
	mix, err := workload.NewMix(progs...)
	if err != nil {
		return nil, err
	}
	if err := m.SetMix(0, mix); err != nil {
		return nil, err
	}
	cfg := o.schedConfig()
	s, err := fvsst.New(cfg, m, budgetFor(140))
	if err != nil {
		return nil, err
	}
	drv := fvsst.NewDriver(m, s)
	if err := drv.Run(1.5); err != nil {
		return nil, err
	}
	d, ok := s.LastDecision()
	if !ok {
		return nil, fmt.Errorf("experiments: no decision")
	}
	a := d.Assignments[0]
	rep := &AblationMaskingReport{
		ChosenMHz:              a.Actual.MHz(),
		AggregatePredictedLoss: a.PredictedLoss,
		PerJobTrueLoss:         map[string]float64{},
		Epsilon:                cfg.Epsilon,
	}
	set := cfg.Table.Frequencies()
	for _, p := range progs {
		dec, err := jobDecomposition(p, o)
		if err != nil {
			return nil, err
		}
		loss := dec.PerfLoss(set.Max(), a.Actual)
		rep.PerJobTrueLoss[p.Name] = loss
		if loss > rep.MaskedJobLoss {
			rep.MaskedJob = p.Name
			rep.MaskedJobLoss = loss
		}
	}
	return rep, nil
}

// Render formats the report.
func (r *AblationMaskingReport) Render() string {
	out := fmt.Sprintf(
		"Ablation: aggregation masking (1 CPU-bound + 3 memory-bound jobs, one CPU)\n"+
			"  scheduler chose %.0fMHz believing the aggregate loses %.1f%% (ε=%.0f%%)\n",
		r.ChosenMHz, r.AggregatePredictedLoss*100, r.Epsilon*100)
	// Sorted order: map iteration order would make same-seed runs differ
	// byte-for-byte, which the determinism regression tests forbid.
	names := make([]string, 0, len(r.PerJobTrueLoss))
	for name := range r.PerJobTrueLoss {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out += fmt.Sprintf("    %-9s true loss %.1f%%\n", name, r.PerJobTrueLoss[name]*100)
	}
	out += fmt.Sprintf("  masked job %s loses %.1f%% — %0.1f× the ε bound\n",
		r.MaskedJob, r.MaskedJobLoss*100, r.MaskedJobLoss/r.Epsilon)
	return out
}

// AblationActuatorReport validates the §6 assumption that fetch throttling
// approximates true frequency scaling: the same workload and budget under
// the default throttle, a coarse throttle, and an idealised DVFS actuator.
type AblationActuatorReport struct {
	Rows []AblationActuatorRow
}

// AblationActuatorRow is one actuator variant's outcome.
type AblationActuatorRow struct {
	Name      string
	Seconds   float64
	CPUEnergy units.Energy
}

// AblationActuator runs gap at a 75 W budget under three actuators.
func AblationActuator(o Options) (*AblationActuatorReport, error) {
	variants := []struct {
		name   string
		steps  int
		settle float64
	}{
		{"fetch-throttle (default)", 100, 0.0005},
		{"coarse throttle (10 steps, 10ms settle)", 10, 0.010},
		{"ideal DVFS (continuous, instant)", 1_000_000, 0},
	}
	rep := &AblationActuatorReport{}
	for _, v := range variants {
		mcfg := o.machineConfig(1)
		mcfg.ThrottleSteps = v.steps
		mcfg.ThrottleSettle = v.settle
		m, err := machine.New(mcfg)
		if err != nil {
			return nil, err
		}
		mix, err := workload.NewMix(workload.Gap(o.Scale))
		if err != nil {
			return nil, err
		}
		if err := m.SetMix(0, mix); err != nil {
			return nil, err
		}
		s, err := fvsst.New(o.schedConfig(), m, budgetFor(75))
		if err != nil {
			return nil, err
		}
		drv := fvsst.NewDriver(m, s)
		done, err := drv.RunUntilAllDone(600)
		if err != nil {
			return nil, err
		}
		if !done {
			return nil, fmt.Errorf("experiments: actuator %s did not finish", v.name)
		}
		comps := m.Completions()
		rep.Rows = append(rep.Rows, AblationActuatorRow{
			Name:      v.name,
			Seconds:   comps[len(comps)-1].At,
			CPUEnergy: m.CPUEnergy(),
		})
	}
	return rep, nil
}

// Render formats the report.
func (r *AblationActuatorReport) Render() string {
	t := telemetry.Table{
		Title:   "Ablation: actuator fidelity (gap at 75W budget)",
		Headers: []string{"Actuator", "runtime (s)", "CPU energy", "vs default"},
	}
	base := r.Rows[0].Seconds
	for _, row := range r.Rows {
		t.MustAddRow(row.Name,
			fmt.Sprintf("%.2f", row.Seconds),
			row.CPUEnergy.String(),
			fmt.Sprintf("%+.1f%%", (row.Seconds/base-1)*100))
	}
	return t.String()
}

// AblationEpsilonReport sweeps the scheduler's ε on mcf at full budget,
// exposing the performance/energy trade the parameter controls and the §5
// constraint that ε must exceed the minimum frequency step to have any
// effect.
type AblationEpsilonReport struct {
	Rows []AblationEpsilonRow
}

// AblationEpsilonRow is one ε setting's outcome.
type AblationEpsilonRow struct {
	Epsilon float64
	// NormPerf is throughput normalised to a fixed 1 GHz run.
	NormPerf float64
	// NormEnergy is CPU energy normalised to the fixed run.
	NormEnergy float64
}

// AblationEpsilon runs the sweep.
func AblationEpsilon(o Options) (*AblationEpsilonReport, error) {
	prog := workload.Mcf(o.Scale)
	ref, err := o.fixedRun(prog, units.GHz(1))
	if err != nil {
		return nil, err
	}
	rep := &AblationEpsilonReport{}
	for _, eps := range []float64{0.02, 0.05, 0.10, 0.15, 0.25} {
		mcfg := o.machineConfig(1)
		m, err := machine.New(mcfg)
		if err != nil {
			return nil, err
		}
		mix, err := workload.NewMix(prog)
		if err != nil {
			return nil, err
		}
		if err := m.SetMix(0, mix); err != nil {
			return nil, err
		}
		cfg := o.schedConfig()
		cfg.Epsilon = eps
		s, err := fvsst.New(cfg, m, budgetFor(140))
		if err != nil {
			return nil, err
		}
		drv := fvsst.NewDriver(m, s)
		done, err := drv.RunUntilAllDone(600)
		if err != nil {
			return nil, err
		}
		if !done {
			return nil, fmt.Errorf("experiments: epsilon %v run did not finish", eps)
		}
		comps := m.Completions()
		rep.Rows = append(rep.Rows, AblationEpsilonRow{
			Epsilon:    eps,
			NormPerf:   ref.Seconds / comps[len(comps)-1].At,
			NormEnergy: m.CPUEnergy().J() / ref.CPUEnergy.J(),
		})
	}
	return rep, nil
}

// Render formats the report.
func (r *AblationEpsilonReport) Render() string {
	t := telemetry.Table{
		Title:   "Ablation: ε sweep (mcf, unconstrained budget, vs fixed 1GHz run)",
		Headers: []string{"ε", "norm perf", "norm CPU energy"},
	}
	for _, row := range r.Rows {
		t.MustAddRow(
			fmt.Sprintf("%.0f%%", row.Epsilon*100),
			fmt.Sprintf("%.3f", row.NormPerf),
			fmt.Sprintf("%.3f", row.NormEnergy),
		)
	}
	return t.String()
}
