package experiments

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Figure9Report reproduces Figures 9 and 10: the actual and desired
// (ε-constrained) frequencies of gap under a 75 W (750 MHz) power limit.
// The desired frequency regularly exceeds the cap; the actual frequency is
// clipped at 750 MHz, so gap "spends more time at 750 MHz than it did
// previously".
type Figure9Report struct {
	// Desired and Actual are the full traces (MHz over seconds).
	Desired *telemetry.Series
	Actual  *telemetry.Series
	// Zoom is the Figure 10 magnification window.
	ZoomDesired *telemetry.Series
	ZoomActual  *telemetry.Series
	// FracClipped is the fraction of scheduling windows in which the
	// desired frequency exceeded the actual.
	FracClipped float64
	// MaxActualMHz is the highest actual set-point observed.
	MaxActualMHz float64
}

// Figure9 runs gap at 75 W with tracing.
func Figure9(o Options) (*Figure9Report, error) {
	prog := workload.Gap(o.Scale)
	res, _, err := o.tracedRun(prog, budgetFor(75))
	if err != nil {
		return nil, err
	}
	rep := &Figure9Report{
		Desired: res.Recorder.Series("desired-mhz"),
		Actual:  res.Recorder.Series("actual-mhz"),
	}
	clipped, total := 0, 0
	for _, d := range res.Decisions {
		a := d.Assignments[0]
		total++
		if a.Desired > a.Actual {
			clipped++
		}
		if mhz := a.Actual.MHz(); mhz > rep.MaxActualMHz {
			rep.MaxActualMHz = mhz
		}
	}
	if total > 0 {
		rep.FracClipped = float64(clipped) / float64(total)
	}
	// Figure 10: magnify the middle fifth of the run.
	if n := rep.Actual.Len(); n > 0 {
		t0 := rep.Actual.Points[2*n/5].T
		t1 := rep.Actual.Points[3*n/5].T
		rep.ZoomDesired = rep.Desired.Between(t0, t1)
		rep.ZoomActual = rep.Actual.Between(t0, t1)
	}
	return rep, nil
}

// WriteCSVTo writes the desired/actual traces to dir/fig9.csv.
func (r *Figure9Report) WriteCSVTo(dir string) error {
	rec := telemetry.RecorderFromSeries(r.Desired, r.Actual)
	return writeCSVFile(dir, "fig9.csv", rec)
}

// Render formats the report.
func (r *Figure9Report) Render() string {
	out := "Figure 9: actual and desired frequencies for gap at 750MHz (75W limit)\n"
	out += telemetry.AsciiOverlay(r.Desired, r.Actual, 10, 72)
	out += "Figure 10: magnified slice\n"
	out += telemetry.AsciiOverlay(r.ZoomDesired, r.ZoomActual, 10, 72)
	out += fmt.Sprintf("windows clipped by the cap: %.0f%%; max actual %.0fMHz\n",
		r.FracClipped*100, r.MaxActualMHz)
	return out
}
