package experiments

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Figure1Curve is the performance-versus-frequency curve of one synthetic
// CPU intensity.
type Figure1Curve struct {
	IntensityPct float64
	Freqs        []units.Frequency
	// NormPerf is throughput at each frequency normalised to throughput
	// at the maximum frequency.
	NormPerf []float64
	// SaturationFreq is the lowest frequency retaining ≥95% of maximum
	// performance — where the curve goes flat.
	SaturationFreq units.Frequency
}

// Figure1Report reproduces Figure 1 (performance saturation, from Kotla et
// al. [2]): memory-intensive settings flatten early, CPU-intensive ones
// stay linear to the top.
type Figure1Report struct {
	Curves []Figure1Curve
}

// Figure1 sweeps synthetic CPU intensity × frequency on a single fixed-
// frequency CPU.
func Figure1(o Options) (*Figure1Report, error) {
	intensities := []float64{100, 75, 50, 25, 10}
	set := power.PaperTable1().Frequencies()
	rep := &Figure1Report{}
	for _, in := range intensities {
		prog, err := o.syntheticSingle(in, 2.0)
		if err != nil {
			return nil, err
		}
		curve := Figure1Curve{IntensityPct: in}
		var perfs []float64
		for _, f := range set {
			res, err := o.fixedRun(prog, f)
			if err != nil {
				return nil, err
			}
			perfs = append(perfs, 1/res.Seconds)
			curve.Freqs = append(curve.Freqs, f)
		}
		base := perfs[len(perfs)-1] // at f_max
		for i, p := range perfs {
			norm := p / base
			curve.NormPerf = append(curve.NormPerf, norm)
			if curve.SaturationFreq == 0 && norm >= 0.95 {
				curve.SaturationFreq = curve.Freqs[i]
			}
		}
		rep.Curves = append(rep.Curves, curve)
	}
	return rep, nil
}

// Render formats the report.
func (r *Figure1Report) Render() string {
	t := telemetry.Table{
		Title:   "Figure 1: performance saturation (normalised throughput vs frequency)",
		Headers: []string{"Frequency", "cpu100", "cpu75", "cpu50", "cpu25", "cpu10"},
	}
	if len(r.Curves) == 0 {
		return t.String()
	}
	for i, f := range r.Curves[0].Freqs {
		row := []string{f.String()}
		for _, c := range r.Curves {
			row = append(row, fmt.Sprintf("%.3f", c.NormPerf[i]))
		}
		t.MustAddRow(row...)
	}
	out := t.String()
	for _, c := range r.Curves {
		out += fmt.Sprintf("saturation (≥95%%) of cpu%.0f: %v\n", c.IntensityPct, c.SaturationFreq)
	}
	return out
}
