package experiments

import (
	"strings"
	"testing"
)

func TestServerFarmDemandTracking(t *testing.T) {
	rep, err := ServerFarm(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted == 0 {
		t.Fatal("no jobs completed")
	}
	// fvsst must save a large share of power on a ~25%-utilised node.
	saving := 1 - rep.MeanPowerFVSSTW/rep.MeanPowerUnmanagedW
	if saving < 0.35 {
		t.Errorf("power saving %.0f%%, want ≥ 35%%", saving*100)
	}
	// Power follows the diurnal demand curve: peak half-periods draw
	// clearly more than troughs.
	if rep.PeakPowerW <= rep.TroughPowerW+30 {
		t.Errorf("no demand tracking: peak %.0fW vs trough %.0fW",
			rep.PeakPowerW, rep.TroughPowerW)
	}
	// The latency cost of parking idle processors stays bounded: requests
	// arriving at a parked CPU run one window at low frequency before the
	// scheduler ramps up.
	if rep.P95LatencyPenalty > 2.0 {
		t.Errorf("p95 latency penalty %.2fx too high", rep.P95LatencyPenalty)
	}
	if rep.P95LatencyPenalty < 1.0 {
		t.Errorf("managed run impossibly faster: %.2fx", rep.P95LatencyPenalty)
	}
	if !strings.Contains(rep.Render(), "diurnal") {
		t.Error("render incomplete")
	}
}
