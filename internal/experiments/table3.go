package experiments

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// Table3Cell is one benchmark × budget measurement.
type Table3Cell struct {
	// Perf is throughput normalised to the unconstrained (140 W) fvsst
	// run — the paper's "Perf @ …" rows.
	Perf float64
	// Energy is processor energy normalised to a non-fvsst system running
	// the benchmark pinned at 1 GHz / 140 W — the paper's "Energy @ …"
	// rows.
	Energy float64
}

// Table3Report reproduces Table 3: performance and energy for gzip, gap,
// mcf and health under 140 W, 75 W and 35 W budgets.
type Table3Report struct {
	Apps    []string
	Budgets []float64
	// Cells[app][budget index].
	Cells map[string][]Table3Cell
	// Paper holds the published values for side-by-side rendering.
	Paper map[string][]Table3Cell
}

// paperTable3 is Table 3 verbatim.
func paperTable3() map[string][]Table3Cell {
	return map[string][]Table3Cell{
		"gzip":   {{1, 0.94}, {0.79, 0.68}, {0.52, 0.47}},
		"gap":    {{1, 0.88}, {0.80, 0.67}, {0.54, 0.47}},
		"mcf":    {{1, 0.43}, {0.99, 0.43}, {0.81, 0.31}},
		"health": {{1, 0.43}, {1, 0.43}, {0.72, 0.35}},
	}
}

// Table3 runs the four applications under the three budgets.
func Table3(o Options) (*Table3Report, error) {
	rep := &Table3Report{
		Apps:    []string{"gzip", "gap", "mcf", "health"},
		Budgets: Table1Budgets,
		Cells:   map[string][]Table3Cell{},
		Paper:   paperTable3(),
	}
	for _, app := range rep.Apps {
		prog, err := workload.App(app, o.Scale)
		if err != nil {
			return nil, err
		}
		// The non-fvsst reference: pinned at 1 GHz, drawing 140 W whenever
		// running.
		ref, err := o.fixedRun(prog, units.GHz(1))
		if err != nil {
			return nil, err
		}
		var base float64
		cells := make([]Table3Cell, 0, len(rep.Budgets))
		for _, lim := range rep.Budgets {
			res, err := o.singleRun(prog, budgetFor(lim), false)
			if err != nil {
				return nil, err
			}
			perf := 1 / res.Seconds
			if lim == 140 {
				base = perf
			}
			cells = append(cells, Table3Cell{
				Perf:   perf / base,
				Energy: res.CPUEnergy.J() / ref.CPUEnergy.J(),
			})
		}
		rep.Cells[app] = cells
	}
	return rep, nil
}

// Render formats the report with measured-vs-paper pairs.
func (r *Table3Report) Render() string {
	t := telemetry.Table{
		Title:   "Table 3: performance and energy under constraint (measured / paper)",
		Headers: []string{"Metric", "gzip", "gap", "mcf", "health"},
	}
	for bi, lim := range r.Budgets {
		row := []string{fmt.Sprintf("Perf @ %.0fW", lim)}
		for _, app := range r.Apps {
			row = append(row, fmt.Sprintf("%s / %s",
				telemetry.FormatNorm(r.Cells[app][bi].Perf),
				telemetry.FormatNorm(r.Paper[app][bi].Perf)))
		}
		t.MustAddRow(row...)
	}
	for bi, lim := range r.Budgets {
		row := []string{fmt.Sprintf("Energy @ %.0fW", lim)}
		for _, app := range r.Apps {
			row = append(row, fmt.Sprintf("%s / %s",
				telemetry.FormatNorm(r.Cells[app][bi].Energy),
				telemetry.FormatNorm(r.Paper[app][bi].Energy)))
		}
		t.MustAddRow(row...)
	}
	return t.String()
}
