package experiments

import (
	"fmt"
	"sort"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure8Residency is the time-at-frequency distribution of one benchmark
// under one frequency cap.
type Figure8Residency struct {
	App string
	// CapMHz is the power-constrained maximum frequency (1000, 750, 500).
	CapMHz float64
	// FracAt maps frequency (MHz, quantised to the Table 1 grid) to the
	// fraction of run time spent there.
	FracAt map[float64]float64
	// ModeMHz is the most-occupied frequency.
	ModeMHz float64
}

// Figure8Report reproduces Figure 8 (percentage of time at each
// frequency): CPU-intensive applications pile up at the cap as soon as it
// binds; memory-intensive ones keep their ≈650 MHz mode until the cap
// drops below it.
type Figure8Report struct {
	Residencies []Figure8Residency
}

// figure8Caps maps the paper's frequency caps to the equivalent budgets.
var figure8Caps = []struct {
	capMHz float64
	limitW float64
}{
	{1000, 140},
	{750, 75},
	{500, 35},
}

// Figure8 runs the residency study.
func Figure8(o Options) (*Figure8Report, error) {
	rep := &Figure8Report{}
	for _, app := range []string{"gzip", "gap", "mcf", "health"} {
		prog, err := workload.App(app, o.Scale)
		if err != nil {
			return nil, err
		}
		for _, c := range figure8Caps {
			res, _, err := o.tracedRun(prog, budgetFor(c.limitW))
			if err != nil {
				return nil, err
			}
			hist := stats.NewHistogram()
			freq := res.Recorder.Series("freq-mhz")
			for i := 1; i < len(freq.Points); i++ {
				dt := freq.Points[i].T - freq.Points[i-1].T
				// Quantise to the nearest 50 MHz grid step so throttle
				// duty rounding does not scatter the bins.
				bin := 50 * float64(int(freq.Points[i].V/50+0.5))
				hist.MustAdd(bin, dt)
			}
			r := Figure8Residency{App: app, CapMHz: c.capMHz, FracAt: map[float64]float64{}}
			bins, fracs := hist.Fractions()
			best := -1.0
			for i, b := range bins {
				r.FracAt[b] = fracs[i]
				if fracs[i] > best {
					best = fracs[i]
					r.ModeMHz = b
				}
			}
			rep.Residencies = append(rep.Residencies, r)
		}
	}
	return rep, nil
}

// Residency returns the entry for one app and cap, or nil.
func (r *Figure8Report) Residency(app string, capMHz float64) *Figure8Residency {
	for i := range r.Residencies {
		if r.Residencies[i].App == app && r.Residencies[i].CapMHz == capMHz {
			return &r.Residencies[i]
		}
	}
	return nil
}

// Render formats the report.
func (r *Figure8Report) Render() string {
	out := "Figure 8: percentage of time at each frequency\n"
	for _, res := range r.Residencies {
		out += fmt.Sprintf("%s @ cap %.0fMHz (mode %.0fMHz): ", res.App, res.CapMHz, res.ModeMHz)
		bins := make([]float64, 0, len(res.FracAt))
		for b := range res.FracAt {
			bins = append(bins, b)
		}
		sort.Float64s(bins)
		first := true
		for _, b := range bins {
			if f := res.FracAt[b]; f >= 0.005 {
				if !first {
					out += ", "
				}
				out += fmt.Sprintf("%.0fMHz %.0f%%", b, f*100)
				first = false
			}
		}
		out += "\n"
	}
	return out
}
