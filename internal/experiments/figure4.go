package experiments

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/units"
)

// Figure4Row compares synthetic benchmark throughput with and without the
// fvsst daemon at one CPU intensity.
type Figure4Row struct {
	IntensityPct float64
	// Degradation is 1 − throughput(fvsst)/throughput(bare): the
	// prototype's total cost including its own CPU time and any
	// misprediction-induced throttling.
	Degradation float64
}

// Figure4Report reproduces Figure 4: the performance impact of running
// fvsst stays small (≤3%), largest at CPU-intensive settings.
type Figure4Report struct {
	Rows []Figure4Row
}

// Figure4 runs the overhead study on an unconstrained budget.
func Figure4(o Options) (*Figure4Report, error) {
	rep := &Figure4Report{}
	for _, intensity := range []float64{100, 75, 50, 25} {
		prog, err := o.syntheticSingle(intensity, 3.0)
		if err != nil {
			return nil, err
		}
		bare, err := o.fixedRun(prog, units.GHz(1))
		if err != nil {
			return nil, err
		}
		managed, err := o.singleRun(prog, budgetFor(140), false)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, Figure4Row{
			IntensityPct: intensity,
			Degradation:  1 - bare.Seconds/managed.Seconds,
		})
	}
	return rep, nil
}

// Render formats the report.
func (r *Figure4Report) Render() string {
	t := telemetry.Table{
		Title:   "Figure 4: fvsst overhead (throughput degradation vs unmanaged run)",
		Headers: []string{"CPU intensity", "degradation"},
	}
	for _, row := range r.Rows {
		t.MustAddRow(fmt.Sprintf("%.0f", row.IntensityPct), fmt.Sprintf("%.2f%%", row.Degradation*100))
	}
	return t.String()
}
