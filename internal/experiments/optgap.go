package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/scenario"
)

// OptGapConfig sizes a greedy-vs-optimal gap measurement campaign.
type OptGapConfig struct {
	// Seeds is the number of scenario.Generate seeds to measure.
	Seeds int `json:"seeds"`
	// BaseSeed offsets the seed range; 0 means 1.
	BaseSeed int64 `json:"base_seed,omitempty"`
	// Parallel is the worker-pool size; 0 or 1 runs sequentially. Results
	// aggregate in seed order, so the report is identical at any width.
	Parallel int `json:"parallel,omitempty"`
}

// OptGapSeed is one seed's measurement.
type OptGapSeed struct {
	Seed       int64                `json:"seed"`
	Rounds     int                  `json:"rounds,omitempty"`
	Gap        scenario.OptGapStats `json:"gap"`
	Violations int                  `json:"violations,omitempty"`
	Err        string               `json:"err,omitempty"`
}

// OptGapReport is the campaign outcome: per-seed rows in seed order plus
// the corpus-wide aggregate. Total.WorstGap over a large corpus is the
// empirical bound invariant.DefaultGap is calibrated against.
type OptGapReport struct {
	Config     OptGapConfig         `json:"config"`
	Seeds      []OptGapSeed         `json:"seeds"`
	Total      scenario.OptGapStats `json:"total"`
	Violations int                  `json:"violations"`
	Errors     int                  `json:"errors"`
}

// OptGap runs every seed's scenario under Options.MeasureGap: each
// scheduling pass is re-solved exactly (internal/optimal) and the loss
// of the greedy assignment that actually ran is compared against the
// true optimum. Every job derives all randomness from its seed, so the
// report is deterministic at any worker count.
func OptGap(cfg OptGapConfig) *OptGapReport {
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = 1
	}
	rows := make([]OptGapSeed, cfg.Seeds)
	workers := cfg.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(rows) {
		workers = len(rows)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				seed := cfg.BaseSeed + int64(i)
				row := OptGapSeed{Seed: seed}
				r, err := scenario.RunCluster(scenario.Generate(seed), scenario.Options{MeasureGap: true})
				if err != nil {
					row.Err = err.Error()
				} else {
					row.Rounds = r.Rounds
					row.Violations = len(r.Violations)
					if r.Gap != nil {
						row.Gap = *r.Gap
					}
				}
				rows[i] = row
			}
		}()
	}
	for i := range rows {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &OptGapReport{Config: cfg, Seeds: rows}
	for _, row := range rows {
		if row.Err != "" {
			rep.Errors++
			continue
		}
		rep.Violations += row.Violations
		rep.Total.Merge(row.Gap)
	}
	return rep
}

// WriteText renders the gap table: one fixed-format row per seed plus
// the corpus aggregate, stable to the byte across runs and worker
// counts (the CI smoke job compares two renderings verbatim).
func (r *OptGapReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "optgap: %d seed(s) from %d\n", r.Config.Seeds, r.Config.BaseSeed)
	fmt.Fprintf(w, "%-8s %6s %5s %7s %14s %14s %14s %8s\n",
		"seed", "passes", "skip", "nonopt", "worst-gap", "greedy-loss", "optimal-loss", "e-feas")
	for _, row := range r.Seeds {
		if row.Err != "" {
			fmt.Fprintf(w, "%-8d ERROR %s\n", row.Seed, row.Err)
			continue
		}
		g := row.Gap
		fmt.Fprintf(w, "%-8d %6d %5d %7d %14.9g %14.9g %14.9g %8d\n",
			row.Seed, g.Passes, g.Skipped, g.NonOptimal, g.WorstGap, g.GreedyLoss, g.OptimalLoss, g.EnergyFeasible)
		if row.Violations > 0 {
			fmt.Fprintf(w, "%-8d %d invariant violation(s)\n", row.Seed, row.Violations)
		}
	}
	t := r.Total
	fmt.Fprintf(w, "total: %d passes (%d skipped), %d non-optimal, worst gap %.9g\n",
		t.Passes, t.Skipped, t.NonOptimal, t.WorstGap)
	if t.Passes > 0 {
		fmt.Fprintf(w, "total: greedy loss %.9g vs optimal %.9g (mean excess %.9g/pass), energy-optimal feasible %d/%d\n",
			t.GreedyLoss, t.OptimalLoss, (t.GreedyLoss-t.OptimalLoss)/float64(t.Passes), t.EnergyFeasible, t.Passes)
	}
	if r.Errors > 0 || r.Violations > 0 {
		fmt.Fprintf(w, "total: %d error(s), %d violation(s)\n", r.Errors, r.Violations)
	}
}
