package experiments

import (
	"strings"
	"testing"
)

func TestAblationExecModelAgreement(t *testing.T) {
	rep, err := AblationExecModel(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The CPU3* < CPU3 conclusion must hold under both noise models.
	if rep.DevAnalyticStar >= rep.DevAnalytic {
		t.Errorf("analytic: star %.4f not below raw %.4f", rep.DevAnalyticStar, rep.DevAnalytic)
	}
	if rep.DevMonteCarloStar >= rep.DevMonteCarlo {
		t.Errorf("MC: star %.4f not below raw %.4f", rep.DevMonteCarloStar, rep.DevMonteCarlo)
	}
	// And the magnitudes agree across models within 2× — the error is a
	// property of the mechanism, not of one simulator's noise source.
	ratio := rep.DevMonteCarlo / rep.DevAnalytic
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("exec models disagree on error magnitude: %.4f vs %.4f", rep.DevMonteCarlo, rep.DevAnalytic)
	}
	if !strings.Contains(rep.Render(), "Monte-Carlo") {
		t.Error("render incomplete")
	}
}
