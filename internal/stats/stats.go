// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics, deviation metrics for the predictor
// accuracy study (Table 2), percentiles, histograms for the frequency
// residency study (Figure 8), and time-weighted series reductions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanAbsDeviation returns mean(|a_i - b_i|) between two equal-length
// series. This is the "IPC deviation" metric of the paper's Table 2.
// It panics if the lengths differ (caller bug) and returns NaN when empty.
func MeanAbsDeviation(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: MeanAbsDeviation length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a))
}

// RMSDeviation returns sqrt(mean((a_i-b_i)²)) between two equal-length
// series.
func RMSDeviation(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: RMSDeviation length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty slice
// and panics on an out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest element of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Normalize divides each element by base, reproducing the paper's
// "performance normalised to the unconstrained run" presentation. A zero
// base yields a slice of NaNs rather than Inf to make mistakes obvious.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if base == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = x / base
		}
	}
	return out
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
	}
}

// Welford is a streaming mean/variance accumulator (Welford's algorithm),
// used by the simulator's long-running telemetry so figures over millions of
// quanta do not need to retain every sample.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or NaN before any observation.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running population variance, or NaN before any
// observation.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
