package stats

import "testing"

func TestBucketHistogramValidation(t *testing.T) {
	if _, err := NewBucketHistogram(); err == nil {
		t.Error("empty bound list accepted")
	}
	if _, err := NewBucketHistogram(1, 1); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := NewBucketHistogram(2, 1); err == nil {
		t.Error("descending bounds accepted")
	}
}

func TestBucketHistogramObserve(t *testing.T) {
	h := MustBucketHistogram(0.01, 0.05, 0.25)
	for _, v := range []float64{0.005, 0.01, 0.02, 0.1, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.02+0.1+0.5+2; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Values at a bound land in that bound's bucket (le semantics).
	cum := h.Cumulative()
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Errorf("cumulative = %v", cum)
	}
	if got := h.Bounds(); len(got) != 3 || got[0] != 0.01 {
		t.Errorf("bounds = %v", got)
	}
}

func TestBucketHistogramOverflowOnly(t *testing.T) {
	h := MustBucketHistogram(1)
	h.Observe(10)
	if cum := h.Cumulative(); cum[0] != 0 {
		t.Errorf("cumulative = %v", cum)
	}
	if h.Count() != 1 {
		t.Errorf("count = %d", h.Count())
	}
}
