package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestBucketHistogramValidation(t *testing.T) {
	if _, err := NewBucketHistogram(); err == nil {
		t.Error("empty bound list accepted")
	}
	if _, err := NewBucketHistogram(1, 1); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := NewBucketHistogram(2, 1); err == nil {
		t.Error("descending bounds accepted")
	}
}

func TestBucketHistogramObserve(t *testing.T) {
	h := MustBucketHistogram(0.01, 0.05, 0.25)
	for _, v := range []float64{0.005, 0.01, 0.02, 0.1, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.02+0.1+0.5+2; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Values at a bound land in that bound's bucket (le semantics).
	cum := h.Cumulative()
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Errorf("cumulative = %v", cum)
	}
	if got := h.Bounds(); len(got) != 3 || got[0] != 0.01 {
		t.Errorf("bounds = %v", got)
	}
}

func TestBucketHistogramOverflowOnly(t *testing.T) {
	h := MustBucketHistogram(1)
	h.Observe(10)
	if cum := h.Cumulative(); cum[0] != 0 {
		t.Errorf("cumulative = %v", cum)
	}
	if h.Count() != 1 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestBucketHistogramQuantile(t *testing.T) {
	h := MustBucketHistogram(10, 20, 40)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Errorf("empty quantile = %v, want NaN", h.Quantile(0.5))
	}
	// 10 observations in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %v, want 10 (exact bucket edge)", got)
	}
	// p25 → halfway through the first bucket [0,10].
	if got := h.Quantile(0.25); got != 5 {
		t.Errorf("p25 = %v, want 5", got)
	}
	// p75 → halfway through the second bucket (10,20].
	if got := h.Quantile(0.75); got != 15 {
		t.Errorf("p75 = %v, want 15", got)
	}
	if got := h.Quantile(1); got != 20 {
		t.Errorf("p100 = %v, want 20", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %v, want 0 (lower edge)", got)
	}
}

func TestBucketHistogramQuantileOverflow(t *testing.T) {
	h := MustBucketHistogram(1, 2)
	h.Observe(0.5)
	h.Observe(100) // overflow bucket
	// Quantiles landing in +Inf collapse to the highest finite bound.
	if got := h.Quantile(1); got != 2 {
		t.Errorf("p100 = %v, want 2", got)
	}
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("p99 = %v, want 2", got)
	}
}

func TestBucketHistogramQuantileMonotone(t *testing.T) {
	h := MustBucketHistogram(0.001, 0.01, 0.1, 1, 10)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		h.Observe(math.Exp(rng.NormFloat64()*3 - 3))
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0001; p += 0.001 {
		q := h.Quantile(math.Min(p, 1))
		if q < prev {
			t.Fatalf("quantile not monotone: q(%v) = %v < %v", p, q, prev)
		}
		prev = q
	}
}

func TestBucketHistogramQuantilePanics(t *testing.T) {
	h := MustBucketHistogram(1)
	defer func() {
		if recover() == nil {
			t.Errorf("Quantile(1.5) did not panic")
		}
	}()
	h.Quantile(1.5)
}
