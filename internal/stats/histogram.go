package stats

import (
	"fmt"
	"sort"
)

// Histogram accumulates time-weighted occupancy per discrete bin. The
// frequency-residency study of Figure 8 ("percentage of time at each
// frequency") is a Histogram keyed by frequency setting.
type Histogram struct {
	weights map[float64]float64
	total   float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{weights: make(map[float64]float64)}
}

// Add accumulates weight (typically seconds of residency) into the bin.
// Negative weights are rejected — residency cannot be negative.
func (h *Histogram) Add(bin, weight float64) error {
	if weight < 0 {
		return fmt.Errorf("stats: histogram weight %v must be non-negative", weight)
	}
	h.weights[bin] += weight
	h.total += weight
	return nil
}

// MustAdd is Add for callers with weights known non-negative; it panics on
// error.
func (h *Histogram) MustAdd(bin, weight float64) {
	if err := h.Add(bin, weight); err != nil {
		panic(err)
	}
}

// Total returns the sum of all accumulated weight.
func (h *Histogram) Total() float64 { return h.total }

// Weight returns the accumulated weight of a single bin.
func (h *Histogram) Weight(bin float64) float64 { return h.weights[bin] }

// Fraction returns the bin's share of the total weight in [0,1], or 0 when
// the histogram is empty.
func (h *Histogram) Fraction(bin float64) float64 {
	if h.total == 0 {
		return 0
	}
	return h.weights[bin] / h.total
}

// Bins returns the occupied bins in ascending order.
func (h *Histogram) Bins() []float64 {
	bins := make([]float64, 0, len(h.weights))
	for b := range h.weights {
		bins = append(bins, b)
	}
	sort.Float64s(bins)
	return bins
}

// Fractions returns every occupied bin with its share, ascending by bin.
func (h *Histogram) Fractions() ([]float64, []float64) {
	bins := h.Bins()
	fracs := make([]float64, len(bins))
	for i, b := range bins {
		fracs[i] = h.Fraction(b)
	}
	return bins, fracs
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for b, w := range other.weights {
		h.weights[b] += w
		h.total += w
	}
}
