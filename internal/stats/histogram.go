package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates time-weighted occupancy per discrete bin. The
// frequency-residency study of Figure 8 ("percentage of time at each
// frequency") is a Histogram keyed by frequency setting.
type Histogram struct {
	weights map[float64]float64
	total   float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{weights: make(map[float64]float64)}
}

// Add accumulates weight (typically seconds of residency) into the bin.
// Negative weights are rejected — residency cannot be negative.
func (h *Histogram) Add(bin, weight float64) error {
	if weight < 0 {
		return fmt.Errorf("stats: histogram weight %v must be non-negative", weight)
	}
	h.weights[bin] += weight
	h.total += weight
	return nil
}

// MustAdd is Add for callers with weights known non-negative; it panics on
// error.
func (h *Histogram) MustAdd(bin, weight float64) {
	if err := h.Add(bin, weight); err != nil {
		panic(err)
	}
}

// Total returns the sum of all accumulated weight.
func (h *Histogram) Total() float64 { return h.total }

// Weight returns the accumulated weight of a single bin.
func (h *Histogram) Weight(bin float64) float64 { return h.weights[bin] }

// Fraction returns the bin's share of the total weight in [0,1], or 0 when
// the histogram is empty.
func (h *Histogram) Fraction(bin float64) float64 {
	if h.total == 0 {
		return 0
	}
	return h.weights[bin] / h.total
}

// Bins returns the occupied bins in ascending order.
func (h *Histogram) Bins() []float64 {
	bins := make([]float64, 0, len(h.weights))
	for b := range h.weights {
		bins = append(bins, b)
	}
	sort.Float64s(bins)
	return bins
}

// Fractions returns every occupied bin with its share, ascending by bin.
func (h *Histogram) Fractions() ([]float64, []float64) {
	bins := h.Bins()
	fracs := make([]float64, len(bins))
	for i, b := range bins {
		fracs[i] = h.Fraction(b)
	}
	return bins, fracs
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for b, w := range other.weights {
		h.weights[b] += w
		h.total += w
	}
}

// BucketHistogram is a fixed-bucket histogram in the Prometheus style:
// ascending upper bounds declared up front, an implicit +Inf overflow
// bucket, and a running sum/count. Unlike Histogram (which bins exact
// values, e.g. the discrete frequency settings of Figure 8) it is meant
// for continuous quantities such as prediction error or per-step loss.
// It is not safe for concurrent use; callers wanting shared access wrap
// it in a lock (internal/obs does).
type BucketHistogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	n      uint64
}

// NewBucketHistogram builds a histogram over strictly ascending upper
// bounds. At least one bound is required.
func NewBucketHistogram(bounds ...float64) (*BucketHistogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: bucket histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: bucket bounds not ascending at %v", bounds[i])
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &BucketHistogram{bounds: b, counts: make([]uint64, len(b)+1)}, nil
}

// MustBucketHistogram is NewBucketHistogram for literal bound lists; it
// panics on error.
func MustBucketHistogram(bounds ...float64) *BucketHistogram {
	h, err := NewBucketHistogram(bounds...)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one value into the first bucket whose bound is ≥ v (the
// overflow bucket when none is).
func (h *BucketHistogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *BucketHistogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed values.
func (h *BucketHistogram) Sum() float64 { return h.sum }

// Bounds returns the finite upper bounds in ascending order.
func (h *BucketHistogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// Quantile returns the p-quantile (p in [0,1]) of the observed
// distribution, interpolated linearly within the owning bucket under the
// usual assumption that observations are uniform inside a bucket (the
// histogram_quantile convention). The first bucket's lower edge is 0 for
// non-negative data (min(0, bounds[0]) otherwise) and any quantile that
// lands in the +Inf overflow bucket collapses to the highest finite
// bound — the histogram cannot resolve beyond it. Quantile is monotone
// non-decreasing in p. It returns NaN on an empty histogram and panics
// on p outside [0,1].
func (h *BucketHistogram) Quantile(p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", p))
	}
	if h.n == 0 {
		return math.NaN()
	}
	target := p * float64(h.n)
	lower := math.Min(0, h.bounds[0])
	var cum uint64
	for i, b := range h.bounds {
		c := h.counts[i]
		if float64(cum+c) >= target {
			if c == 0 {
				return b
			}
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (b-lower)*frac
		}
		cum += c
		lower = b
	}
	return h.bounds[len(h.bounds)-1]
}

// Cumulative returns the cumulative count at each finite bound, i.e. the
// Prometheus `le` series without the +Inf entry (which equals Count).
func (h *BucketHistogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.bounds))
	var run uint64
	for i := range h.bounds {
		run += h.counts[i]
		out[i] = run
	}
	return out
}
