package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestEmptyInputsYieldNaN(t *testing.T) {
	for name, got := range map[string]float64{
		"Mean":       Mean(nil),
		"Variance":   Variance(nil),
		"StdDev":     StdDev(nil),
		"Percentile": Percentile(nil, 50),
		"Min":        Min(nil),
		"Max":        Max(nil),
		"MAD":        MeanAbsDeviation(nil, nil),
		"RMS":        RMSDeviation(nil, nil),
	} {
		if !math.IsNaN(got) {
			t.Errorf("%s(empty) = %v, want NaN", name, got)
		}
	}
}

func TestMeanAbsDeviation(t *testing.T) {
	a := []float64{1.0, 2.0, 3.0}
	b := []float64{1.1, 1.9, 3.0}
	want := (0.1 + 0.1 + 0.0) / 3
	if got := MeanAbsDeviation(a, b); !almostEqual(got, want, 1e-12) {
		t.Errorf("MeanAbsDeviation = %v, want %v", got, want)
	}
}

func TestDeviationLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on length mismatch")
		}
	}()
	MeanAbsDeviation([]float64{1}, []float64{1, 2})
}

func TestRMSDeviation(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	want := math.Sqrt((9.0 + 16.0) / 2)
	if got := RMSDeviation(a, b); !almostEqual(got, want, 1e-12) {
		t.Errorf("RMSDeviation = %v, want %v", got, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 25); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Percentile(25) = %v, want 2.5", got)
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on p=101")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{70, 140}, 140)
	if !almostEqual(got[0], 0.5, 1e-12) || got[1] != 1 {
		t.Errorf("Normalize = %v", got)
	}
	for _, v := range Normalize([]float64{1}, 0) {
		if !math.IsNaN(v) {
			t.Errorf("Normalize by zero = %v, want NaN", v)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{1.5, 2.5, 2.5, 9.0, -3.0, 0.25}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Welford variance %v vs batch %v", w.Variance(), Variance(xs))
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) {
		t.Error("empty Welford should report NaN")
	}
}

func TestWelfordAgreesWithBatchProperty(t *testing.T) {
	err := quick.Check(func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, r := range raw {
			xs[i] = float64(r) / 7
			w.Add(xs[i])
		}
		return almostEqual(w.Mean(), Mean(xs), 1e-9) &&
			almostEqual(w.Variance(), Variance(xs), 1e-6)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	h.MustAdd(600, 2)
	h.MustAdd(1000, 6)
	h.MustAdd(600, 2)
	if h.Total() != 10 {
		t.Errorf("Total = %v", h.Total())
	}
	if got := h.Fraction(600); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("Fraction(600) = %v, want 0.4", got)
	}
	if got := h.Weight(1000); got != 6 {
		t.Errorf("Weight(1000) = %v", got)
	}
	bins := h.Bins()
	if len(bins) != 2 || bins[0] != 600 || bins[1] != 1000 {
		t.Errorf("Bins = %v", bins)
	}
}

func TestHistogramRejectsNegativeWeight(t *testing.T) {
	h := NewHistogram()
	if err := h.Add(1, -0.5); err == nil {
		t.Error("want error for negative weight")
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram()
	if got := h.Fraction(5); got != 0 {
		t.Errorf("empty Fraction = %v, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.MustAdd(1, 1)
	b.MustAdd(1, 1)
	b.MustAdd(2, 2)
	a.Merge(b)
	if a.Total() != 4 || a.Weight(1) != 2 || a.Weight(2) != 2 {
		t.Errorf("after Merge: total=%v w1=%v w2=%v", a.Total(), a.Weight(1), a.Weight(2))
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	err := quick.Check(func(ws []uint8) bool {
		h := NewHistogram()
		any := false
		for i, w := range ws {
			if w == 0 {
				continue
			}
			any = true
			h.MustAdd(float64(i%4), float64(w))
		}
		if !any {
			return true
		}
		_, fracs := h.Fractions()
		sum := 0.0
		for _, f := range fracs {
			sum += f
		}
		return almostEqual(sum, 1, 1e-9)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
