package machine

import (
	"math"
	"testing"

	"repro/internal/memhier"
	"repro/internal/workload"
)

func mcConfig() Config {
	cfg := P630Config()
	cfg.MonteCarloExec = true
	cfg.LatencyJitterSigma = 0 // variance comes from miss discreteness
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	return cfg
}

func memPhaseProg(instr uint64) workload.Program {
	return workload.Program{Name: "mem", Phases: []workload.Phase{{
		Name: "m", Alpha: 1.1,
		Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.024},
		Instructions: instr,
	}}}
}

// TestMonteCarloMatchesAnalyticThroughput: the two execution models agree
// on mean throughput to well under 1%.
func TestMonteCarloMatchesAnalyticThroughput(t *testing.T) {
	run := func(mc bool) uint64 {
		cfg := mcConfig()
		cfg.MonteCarloExec = mc
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mix, _ := workload.NewMix(memPhaseProg(1e12))
		m.SetMix(0, mix)
		m.RunUntil(1.0)
		s, _ := m.ReadCounters(0)
		return s.Instructions
	}
	mc, ana := run(true), run(false)
	rel := math.Abs(float64(mc)-float64(ana)) / float64(ana)
	if rel > 0.01 {
		t.Errorf("MC throughput %d vs analytic %d: %.3f%% apart", mc, ana, rel*100)
	}
}

// TestMonteCarloCounterRatesConverge: drawn reference rates match the
// phase's configured rates.
func TestMonteCarloCounterRatesConverge(t *testing.T) {
	m, err := New(mcConfig())
	if err != nil {
		t.Fatal(err)
	}
	mix, _ := workload.NewMix(memPhaseProg(1e12))
	m.SetMix(0, mix)
	m.RunUntil(1.0)
	s, _ := m.ReadCounters(0)
	if s.Instructions == 0 {
		t.Fatal("nothing retired")
	}
	for _, c := range []struct {
		name string
		got  uint64
		want float64
	}{
		{"L2", s.L2Refs, 0.030},
		{"L3", s.L3Refs, 0.006},
		{"mem", s.MemRefs, 0.024},
	} {
		rate := float64(c.got) / float64(s.Instructions)
		if math.Abs(rate-c.want)/c.want > 0.03 {
			t.Errorf("%s rate %.5f vs configured %.5f", c.name, rate, c.want)
		}
	}
}

// TestMonteCarloProducesWindowVariance: per-window IPC varies under MC
// execution (miss discreteness) but is constant under the quiet analytic
// model — the property that makes MC a second predictor-noise source.
func TestMonteCarloProducesWindowVariance(t *testing.T) {
	windowIPCs := func(mc bool) []float64 {
		cfg := mcConfig()
		cfg.MonteCarloExec = mc
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mix, _ := workload.NewMix(memPhaseProg(1e12))
		m.SetMix(0, mix)
		var out []float64
		var prevI, prevC uint64
		for q := 0; q < 100; q++ {
			m.Step()
			s, _ := m.ReadCounters(0)
			di, dc := s.Instructions-prevI, s.Cycles-prevC
			prevI, prevC = s.Instructions, s.Cycles
			if dc > 0 {
				out = append(out, float64(di)/float64(dc))
			}
		}
		return out
	}
	variance := func(xs []float64) float64 {
		var mean, m2 float64
		for i, x := range xs {
			d := x - mean
			mean += d / float64(i+1)
			m2 += d * (x - mean)
		}
		return m2 / float64(len(xs))
	}
	vMC := variance(windowIPCs(true))
	vAna := variance(windowIPCs(false))
	if vMC <= vAna {
		t.Errorf("MC variance %.3g not above analytic %.3g", vMC, vAna)
	}
}

// TestMonteCarloSchedulerConvergence: the fvsst loop still finds the
// saturation frequency when driven by MC execution — checked indirectly by
// running the machine at the ε choice the analytic model predicts and
// confirming counters justify it. (The full scheduler-over-MC path is
// exercised in the fvsst package tests via the Target interface.)
func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	run := func() uint64 {
		m, err := New(mcConfig())
		if err != nil {
			t.Fatal(err)
		}
		mix, _ := workload.NewMix(memPhaseProg(1e12))
		m.SetMix(0, mix)
		m.RunUntil(0.5)
		s, _ := m.ReadCounters(0)
		return s.Cycles
	}
	if run() != run() {
		t.Error("same seed diverged under MC execution")
	}
}

// TestMonteCarloTimeAccounting: the overshoot debt keeps long-run time
// consistent — total non-halted cycles stay within one block of
// frequency × busy-time.
func TestMonteCarloTimeAccounting(t *testing.T) {
	m, err := New(mcConfig())
	if err != nil {
		t.Fatal(err)
	}
	mix, _ := workload.NewMix(memPhaseProg(1e12))
	m.SetMix(2, mix)
	m.RunUntil(2.0)
	s, _ := m.ReadCounters(2)
	wantCycles := 2.0 * 1e9 // 2 s at 1 GHz
	rel := math.Abs(float64(s.Cycles)-wantCycles) / wantCycles
	if rel > 0.01 {
		t.Errorf("cycle accounting off by %.2f%%", rel*100)
	}
}
