package machine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/workload"
)

// ffFingerprint renders every observable the DES fast path must preserve,
// with %v so any bit-level float divergence shows.
func ffFingerprint(m *Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v e=%v ce=%v pend=%d\n", m.Now(), m.Energy(), m.CPUEnergy(), m.PendingArrivals())
	for i := 0; i < m.NumCPUs(); i++ {
		s, err := m.ReadCounters(i)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "cpu%d %+v last=%+v busy=%v f=%v idle=%v\n",
			i, s, m.LastQuantum(i), m.BusySeconds(i), m.EffectiveFrequency(i), m.IsIdle(i))
	}
	for _, c := range m.Completions() {
		fmt.Fprintf(&b, "done %d %s %v\n", c.CPU, c.Program, c.At)
	}
	return b.String()
}

// diffAdvance drives two identically configured machines — one with the
// quantum reference engine (RunUntil), one with AdvanceTo — applying the
// same mutations at every checkpoint, and requires byte-identical
// fingerprints throughout.
func diffAdvance(t *testing.T, cfg Config, checkpoints []float64, apply func(m *Machine, ck float64)) {
	t.Helper()
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	des, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if apply != nil {
		apply(ref, 0)
		apply(des, 0)
	}
	for _, ck := range checkpoints {
		ref.RunUntil(ck)
		if err := des.AdvanceTo(ck); err != nil {
			t.Fatalf("AdvanceTo(%v): %v", ck, err)
		}
		want, got := ffFingerprint(ref), ffFingerprint(des)
		if got != want {
			t.Fatalf("diverged at checkpoint t=%v:\n--- stepped ---\n%s--- advanced ---\n%s", ck, want, got)
		}
		if apply != nil {
			apply(ref, ck)
			apply(des, ck)
		}
	}
}

// burst returns n small jobs arriving together at time at, round-robin over
// the first three CPUs.
func burst(at float64, n int) workload.Schedule {
	var s workload.Schedule
	for i := 0; i < n; i++ {
		s = append(s, workload.Arrival{At: at, CPU: i % 3, Program: workload.Gzip(0.002)})
	}
	return s
}

func submitBursts(t *testing.T) func(m *Machine, ck float64) {
	return func(m *Machine, ck float64) {
		if ck != 0 {
			return
		}
		if err := m.Submit(burst(0.48, 3)); err != nil {
			t.Fatal(err)
		}
		if err := m.Submit(burst(3.013, 2)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdvanceToMatchesStepIdleHalt(t *testing.T) {
	cfg := quietConfig()
	cfg.Idle = IdleHalt
	diffAdvance(t, cfg, []float64{0.25, 1.0, 2.0, 5.0, 12.0, 30.0}, submitBursts(t))
}

func TestAdvanceToMatchesStepIdleHot(t *testing.T) {
	// Hot idle retires instructions every quantum, so the replay path must
	// track the idle cursor across spans long enough to wrap its spin
	// phase (~82 quanta per wrap at nominal frequency).
	diffAdvance(t, quietConfig(), []float64{0.25, 1.0, 2.0, 5.0, 12.0, 60.0}, submitBursts(t))
}

func TestAdvanceToMatchesStepFullNoise(t *testing.T) {
	// The paper-default config draws jitter RNG every busy quantum, so
	// probe-and-replay must refuse to certify spans and fall back to
	// stepping — still byte-identical, just not fast.
	diffAdvance(t, P630Config(), []float64{0.25, 1.0, 3.0, 5.0}, submitBursts(t))
}

func TestAdvanceToMatchesStepWithActuation(t *testing.T) {
	cfg := quietConfig()
	cfg.ThrottleSettle = 0.0005 // exercise the Settling eligibility gate
	freqs := cfg.Table.Frequencies()
	apply := func(m *Machine, ck float64) {
		switch ck {
		case 0:
			if err := m.Submit(burst(0.48, 3)); err != nil {
				t.Fatal(err)
			}
		case 1.0:
			for i := 0; i < m.NumCPUs(); i++ {
				if err := m.SetFrequency(i, freqs[0]); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.StealTime(0, 0.0031); err != nil {
				t.Fatal(err)
			}
		case 5.0:
			if err := m.SetFrequency(1, freqs[len(freqs)-1]); err != nil {
				t.Fatal(err)
			}
			if err := m.SetFrequency(2, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	diffAdvance(t, cfg, []float64{0.25, 1.0, 2.0, 5.0, 9.0, 20.0}, apply)
}

func TestFastForwardCallbackMatchesStep(t *testing.T) {
	// With a per-quantum callback the fast path must fire it every
	// quantum, fully advanced — the contract a window sampler relies on.
	cfg := quietConfig()
	mkMachine := func() *Machine {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Submit(burst(1.507, 2)); err != nil {
			t.Fatal(err)
		}
		return m
	}
	collect := func(m *Machine, out *[]string) func() error {
		return func() error {
			s, err := m.ReadCounters(0)
			if err != nil {
				return err
			}
			*out = append(*out, fmt.Sprintf("%v %+v %+v", m.Now(), s, m.LastQuantum(0)))
			return nil
		}
	}
	const n = 400
	ref := mkMachine()
	var refSeq []string
	refAfter := collect(ref, &refSeq)
	for i := 0; i < n; i++ {
		ref.Step()
		if err := refAfter(); err != nil {
			t.Fatal(err)
		}
	}
	des := mkMachine()
	var desSeq []string
	if err := des.FastForwardQuanta(n, collect(des, &desSeq)); err != nil {
		t.Fatal(err)
	}
	if len(desSeq) != n {
		t.Fatalf("callback fired %d times, want %d", len(desSeq), n)
	}
	for i := range refSeq {
		if refSeq[i] != desSeq[i] {
			t.Fatalf("quantum %d diverged:\nstepped:  %s\nadvanced: %s", i, refSeq[i], desSeq[i])
		}
	}
	if got, want := ffFingerprint(des), ffFingerprint(ref); got != want {
		t.Fatalf("final state diverged:\n--- stepped ---\n%s--- advanced ---\n%s", want, got)
	}
}

func TestFastForwardSpanReplaysIdleHalt(t *testing.T) {
	// White box: a halted-idle machine has a trivially steady quantum, so
	// one span should cover the full request after the two probes.
	cfg := quietConfig()
	cfg.Idle = IdleHalt
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k, err := m.fastForwardSpan(500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k != 500 {
		t.Fatalf("fastForwardSpan advanced %d quanta, want 500 (replay did not engage)", k)
	}
}

func TestFastForwardSpanReplaysIdleHot(t *testing.T) {
	// Hot idle replays too, but each span is clipped to stay inside the
	// spin loop's current phase; the wrap quanta run as real steps.
	m, err := New(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	k, err := m.fastForwardSpan(500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 2 || k > 500 {
		t.Fatalf("fastForwardSpan advanced %d quanta, want a bounded replay in (2, 500]", k)
	}
}

func TestFastForwardRejectsNegative(t *testing.T) {
	m := newQuiet(t)
	var se *StepError
	if err := m.FastForwardQuanta(-1, nil); !errors.As(err, &se) {
		t.Fatalf("FastForwardQuanta(-1) = %v, want *StepError", err)
	}
	if err := m.AdvanceTo(0); err != nil || m.Now() != 0 {
		t.Fatalf("AdvanceTo(0) = %v at t=%v, want no-op", err, m.Now())
	}
}

func TestNextArrivalAt(t *testing.T) {
	m := newQuiet(t)
	if _, ok := m.NextArrivalAt(); ok {
		t.Fatal("fresh machine reports a pending arrival")
	}
	if err := m.Submit(burst(2.5, 1)); err != nil {
		t.Fatal(err)
	}
	if at, ok := m.NextArrivalAt(); !ok || at != 2.5 {
		t.Fatalf("NextArrivalAt = %v, %v; want 2.5, true", at, ok)
	}
}

func TestStepErrorFormatting(t *testing.T) {
	cause := errors.New("negative energy")
	err := &StepError{Machine: "p630", At: 1.23, Op: "cpu-energy", Err: cause}
	msg := err.Error()
	for _, want := range []string{"p630", "1.23", "cpu-energy", "negative energy"} {
		if !strings.Contains(msg, want) {
			t.Errorf("StepError message %q missing %q", msg, want)
		}
	}
	if !errors.Is(err, cause) {
		t.Error("errors.Is does not reach the wrapped cause")
	}
}

func TestCompletionHookOnAdvancePath(t *testing.T) {
	// Completions fired through a hook must arrive identically on both
	// engines (the serving station depends on exact completion times).
	cfg := quietConfig()
	run := func(advance bool) []string {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		m.SetCompletionHook(func(c JobCompletion) {
			got = append(got, fmt.Sprintf("%d %s %v", c.CPU, c.Program, c.At))
		})
		if err := m.Submit(burst(0.753, 3)); err != nil {
			t.Fatal(err)
		}
		if advance {
			if err := m.AdvanceTo(8.0); err != nil {
				t.Fatal(err)
			}
		} else {
			m.RunUntil(8.0)
		}
		if len(m.Completions()) != 0 {
			t.Fatal("hooked completions leaked into the slice")
		}
		return got
	}
	want, got := run(false), run(true)
	if len(want) == 0 {
		t.Fatal("no completions recorded; burst never ran")
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("hook streams diverged:\nstepped:  %v\nadvanced: %v", want, got)
	}
}

func BenchmarkAdvanceIdleHour(b *testing.B) {
	cfg := quietConfig()
	cfg.Idle = IdleHalt
	for i := 0; i < b.N; i++ {
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.AdvanceTo(3600); err != nil {
			b.Fatal(err)
		}
	}
}
