// Package machine is the simulated SMP node that stands in for the paper's
// 4-way Power4+ pSeries p630. It executes workload programs in dispatch
// quanta, maintains per-processor performance counters, actuates frequency
// through the throttle model, accounts power from the operating-point
// table, and exposes exactly the observation/actuation surface the fvsst
// daemon had on real hardware:
//
//   - counters.Reader (read the PMCs of every CPU),
//   - SetFrequency (throttle a CPU to an effective frequency),
//   - IsIdle (the firmware idle indicator of §5),
//   - measured total power.
//
// The ground-truth execution model deliberately includes effects the
// predictor cannot see — non-memory stalls, shared-L2 contention between
// core pairs, and memory-latency jitter — because those gaps are what
// produce the predictor error the paper quantifies in Table 2.
package machine

import (
	"fmt"
	"math/rand"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/memhier"
	"repro/internal/power"
	"repro/internal/throttle"
	"repro/internal/units"
	"repro/internal/workload"
)

// IdleMode selects how a processor with no runnable work behaves.
type IdleMode int

const (
	// IdleHot runs the Power4+'s tight CPU-intensive idle loop (IPC ≈
	// 1.3), which looks like real work to the counters — the pathology
	// that motivates the idle indicator (§5, §7.1).
	IdleHot IdleMode = iota
	// IdleHalt models a processor that halts when idle and counts halted
	// cycles, making an explicit idle indicator unnecessary.
	IdleHalt
)

// Config describes the machine to simulate.
type Config struct {
	Name    string
	NumCPUs int
	Hier    memhier.Hierarchy
	// Table is the operating-point table (frequency/voltage/power) the
	// machine's power draw follows.
	Table *power.Table
	// Quantum is the dispatch period t in seconds (10 ms on the paper's
	// Linux 2.6 platform; smaller values interfere with the OS quantum).
	Quantum float64
	// ThrottleKind/Steps/Settle configure the frequency actuator.
	ThrottleKind   throttle.Kind
	ThrottleSteps  int
	ThrottleSettle float64
	// Idle selects hot-loop or halting idle.
	Idle IdleMode
	// Contention configures shared-L2 interference between core pairs.
	Contention memhier.Contention
	// ContentionSatRefs is the post-L1 reference rate (refs/s) at which a
	// partner core saturates the shared L2.
	ContentionSatRefs float64
	// LatencyJitterSigma is the per-quantum relative σ of true memory
	// latency around nominal. The predictor assumes constant latency.
	LatencyJitterSigma float64
	// MonteCarloExec switches execution from the closed-form analytic CPI
	// to per-block stochastic reference draws (see montecarlo.go): slower
	// but with execution variance emerging from miss discreteness.
	MonteCarloExec bool
	// NonCPU is the constant non-processor system power.
	NonCPU units.Power
	// MeterNoiseSigma is the relative noise of the system power sensor.
	MeterNoiseSigma float64
	Seed            int64
}

// P630Config returns the paper's experimental platform: 4 CPUs, the Table 1
// operating points, fetch throttling, 10 ms dispatch quanta, hot idle, and
// the §2 system power breakdown.
func P630Config() Config {
	return Config{
		Name:               "p630",
		NumCPUs:            4,
		Hier:               memhier.P630(),
		Table:              power.PaperTable1(),
		Quantum:            0.010,
		ThrottleKind:       throttle.Fetch,
		ThrottleSteps:      100,
		ThrottleSettle:     0.0005,
		Idle:               IdleHot,
		Contention:         memhier.Contention{MaxInflation: 1.25},
		ContentionSatRefs:  5e6,
		LatencyJitterSigma: 0.03,
		NonCPU:             power.MotivatingSystem().Base,
		MeterNoiseSigma:    0.01,
		Seed:               1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumCPUs <= 0 {
		return fmt.Errorf("machine: NumCPUs %d must be positive", c.NumCPUs)
	}
	if err := c.Hier.Validate(); err != nil {
		return err
	}
	if c.Table == nil {
		return fmt.Errorf("machine: operating-point table required")
	}
	if c.Quantum <= 0 {
		return fmt.Errorf("machine: quantum %v must be positive", c.Quantum)
	}
	if c.ThrottleSteps < 1 {
		return fmt.Errorf("machine: throttle steps %d must be ≥ 1", c.ThrottleSteps)
	}
	if c.LatencyJitterSigma < 0 || c.LatencyJitterSigma > 0.5 {
		return fmt.Errorf("machine: latency jitter %v out of [0,0.5]", c.LatencyJitterSigma)
	}
	if c.NonCPU < 0 {
		return fmt.Errorf("machine: non-CPU power %v must be non-negative", c.NonCPU)
	}
	return nil
}

// JobCompletion records one program finishing on a CPU.
type JobCompletion struct {
	CPU     int
	Program string
	// At is the simulation time of completion in seconds.
	At float64
}

// QuantumStats summarises what one CPU did in the latest quantum.
type QuantumStats struct {
	Freq         units.Frequency
	Instructions uint64
	Cycles       uint64
	Idle         bool
	// PostL1Rate is the post-L1 reference rate in refs/s, used for
	// contention coupling and diagnostics.
	PostL1Rate float64
}

type cpu struct {
	mix         *workload.Mix
	throt       *throttle.Throttle
	totals      counters.Sample
	stolenDebt  float64 // seconds of daemon time to steal from upcoming quanta
	idleNow     bool
	idleCursor  *workload.Cursor
	last        QuantumStats
	completions int
	// busySeconds accumulates quanta spent with runnable work (for
	// utilisation reporting).
	busySeconds float64
}

// Machine is the running simulator. It is not safe for concurrent use; the
// simulation is single-threaded by design (deterministic).
type Machine struct {
	cfg  Config
	cpus []*cpu
	// clock is the machine's simulated time source, advancing one dispatch
	// quantum per Step.
	clock  engine.SimClock
	rng    *rand.Rand
	meter  *power.Meter
	energy power.EnergyMeter
	// cpuEnergy integrates processor-only energy, the quantity Table 3
	// normalises.
	cpuEnergy   power.EnergyMeter
	completions []JobCompletion
	// completionHook, when set, receives every job completion synchronously
	// inside the dispatch loop instead of the completions slice.
	completionHook func(JobCompletion)
	// arrivals holds future job submissions (open workloads), time-sorted.
	arrivals workload.Schedule
	// prevRates is Step's reused contention-coupling scratch.
	prevRates []float64
	// ffBase/ffProbe are FastForwardQuanta's reused probe scratch (see
	// advance.go): per-CPU counter baselines and measured quantum deltas.
	ffBase  []counters.Sample
	ffProbe []quantumDelta
}

// New builds a machine from the configuration. Every CPU starts at nominal
// frequency running nothing (idle).
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	meter, err := power.NewMeter(cfg.MeterNoiseSigma, cfg.Seed+1000)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		clock: *engine.NewSimClock(cfg.Quantum),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		meter: meter,
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		th, err := throttle.New(cfg.ThrottleKind, cfg.Table.MaxFrequency(), cfg.ThrottleSteps, cfg.ThrottleSettle)
		if err != nil {
			return nil, err
		}
		idleCur, err := workload.NewCursor(workload.HotIdle())
		if err != nil {
			return nil, err
		}
		m.cpus = append(m.cpus, &cpu{throt: th, idleCursor: idleCur, idleNow: true})
	}
	return m, nil
}

// Now returns the simulation time in seconds.
func (m *Machine) Now() float64 { return m.clock.Now() }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumCPUs implements counters.Reader.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// ReadCounters implements counters.Reader: an exact read of the CPU's
// monotonic counters at the current simulation time.
func (m *Machine) ReadCounters(i int) (counters.Sample, error) {
	if i < 0 || i >= len(m.cpus) {
		return counters.Sample{}, fmt.Errorf("machine: cpu %d out of range", i)
	}
	s := m.cpus[i].totals
	s.Time = m.clock.Now()
	return s, nil
}

// SetMix assigns the multiprogrammed workload of CPU i. A nil mix leaves
// the CPU idle.
func (m *Machine) SetMix(i int, mix *workload.Mix) error {
	if i < 0 || i >= len(m.cpus) {
		return fmt.Errorf("machine: cpu %d out of range", i)
	}
	m.cpus[i].mix = mix
	return nil
}

// Mix returns the workload of CPU i (nil when idle).
func (m *Machine) Mix(i int) *workload.Mix { return m.cpus[i].mix }

// SetFrequency requests an effective frequency for CPU i, actuated through
// the throttle (quantisation and settling apply).
func (m *Machine) SetFrequency(i int, f units.Frequency) error {
	if i < 0 || i >= len(m.cpus) {
		return fmt.Errorf("machine: cpu %d out of range", i)
	}
	_, err := m.cpus[i].throt.Request(m.clock.Now(), f)
	return err
}

// EffectiveFrequency returns the frequency CPU i currently runs at.
func (m *Machine) EffectiveFrequency(i int) units.Frequency {
	return m.cpus[i].throt.Effective(m.clock.Now())
}

// IsIdle reports whether CPU i currently has no runnable work — the signal
// the firmware/OS idle indicator of §5 would deliver. It is computed live
// (not from the last quantum) so a freshly assigned mix immediately clears
// the idle state.
func (m *Machine) IsIdle(i int) bool {
	c := m.cpus[i]
	return c.mix == nil || c.mix.Done()
}

// StealTime charges the fvsst daemon's own execution time against CPU i:
// the seconds are deducted from the CPU's upcoming quanta, modelling the
// prototype's measured overhead (Figure 4).
func (m *Machine) StealTime(i int, seconds float64) error {
	if i < 0 || i >= len(m.cpus) {
		return fmt.Errorf("machine: cpu %d out of range", i)
	}
	if seconds < 0 {
		return fmt.Errorf("machine: cannot steal negative time")
	}
	m.cpus[i].stolenDebt += seconds
	return nil
}

// CPUPower returns the table power of CPU i at its current effective
// frequency. Frequency zero means the processor is powered off entirely
// (the power-down policy) and draws nothing, matching
// baseline.AssignmentPower's convention; any non-zero frequency is floored
// at the table's lowest operating point.
func (m *Machine) CPUPower(i int) units.Power {
	f := m.EffectiveFrequency(i)
	if f == 0 {
		return 0
	}
	p, err := m.cfg.Table.PowerInterp(f)
	if err != nil {
		// Effective frequency can never exceed the table's nominal max, so
		// interpolation cannot fail; keep the invariant loud.
		panic(fmt.Sprintf("machine: power lookup at %v: %v", f, err))
	}
	return p
}

// TotalCPUPower returns the aggregate processor power.
func (m *Machine) TotalCPUPower() units.Power {
	var total units.Power
	for i := range m.cpus {
		total += m.CPUPower(i)
	}
	return total
}

// SystemPower returns the true total system power (CPUs + non-CPU base).
func (m *Machine) SystemPower() units.Power {
	return m.cfg.NonCPU + m.TotalCPUPower()
}

// MeasuredSystemPower returns a sensor reading of system power, with noise.
func (m *Machine) MeasuredSystemPower() units.Power {
	return m.meter.Read(m.SystemPower())
}

// Energy returns the integrated total system energy so far.
func (m *Machine) Energy() units.Energy { return m.energy.Total() }

// CPUEnergy returns the integrated processor-only energy so far, the
// quantity the paper's Table 3 reports (normalised by the caller).
func (m *Machine) CPUEnergy() units.Energy { return m.cpuEnergy.Total() }

// SetCompletionHook diverts job completions to fn instead of the
// unbounded completions slice. The hook fires synchronously inside the
// dispatch loop at the moment the job finishes, *before* the CPU picks
// its next job — so a hook that installs more work (a serving station
// rebinding the cursor to the next queued request) keeps the CPU busy
// within the same quantum, making the station work-conserving. The hook
// must not call back into the machine's stepping methods. A nil fn
// restores the default slice recording.
func (m *Machine) SetCompletionHook(fn func(JobCompletion)) {
	m.completionHook = fn
}

// Completions returns every job completion recorded so far.
func (m *Machine) Completions() []JobCompletion {
	out := make([]JobCompletion, len(m.completions))
	copy(out, m.completions)
	return out
}

// LastQuantum returns what CPU i did during the most recent Step.
func (m *Machine) LastQuantum(i int) QuantumStats { return m.cpus[i].last }

// BusySeconds returns how long CPU i has had runnable work, in simulated
// seconds (quantum granularity).
func (m *Machine) BusySeconds(i int) float64 { return m.cpus[i].busySeconds }

// Utilization returns CPU i's busy fraction of the elapsed simulation, or
// 0 before any quantum ran.
func (m *Machine) Utilization(i int) float64 {
	if m.clock.Now() == 0 {
		return 0
	}
	return m.cpus[i].busySeconds / m.clock.Now()
}

// AllJobsDone reports whether every assigned mix has completed (idle CPUs
// with no mix count as done). A machine with pending arrivals is not done.
func (m *Machine) AllJobsDone() bool {
	if len(m.arrivals) > 0 {
		return false
	}
	for _, c := range m.cpus {
		if c.mix != nil && !c.mix.Done() {
			return false
		}
	}
	return true
}

// Submit schedules jobs to arrive at their times — the open-workload model
// of a server node. Arrivals whose time has already passed join
// immediately at the next Step. Each arrival's CPU must be in range.
func (m *Machine) Submit(arrivals workload.Schedule) error {
	if err := arrivals.Validate(); err != nil {
		return err
	}
	for _, a := range arrivals {
		if a.CPU >= len(m.cpus) {
			return fmt.Errorf("machine: arrival cpu %d out of range", a.CPU)
		}
	}
	m.arrivals = append(m.arrivals, arrivals...)
	m.arrivals = m.arrivals.Sorted()
	return nil
}

// PendingArrivals returns how many submitted jobs have not yet arrived.
func (m *Machine) PendingArrivals() int { return len(m.arrivals) }

// admitArrivals moves matured arrivals into their CPUs' mixes.
func (m *Machine) admitArrivals() {
	for len(m.arrivals) > 0 && m.arrivals[0].At <= m.clock.Now() {
		a := m.arrivals[0]
		m.arrivals = m.arrivals[1:]
		c := m.cpus[a.CPU]
		if c.mix == nil {
			mix, err := workload.NewMix(a.Program)
			if err != nil {
				panic(fmt.Sprintf("machine: admit arrival: %v", err)) // validated at Submit
			}
			c.mix = mix
			continue
		}
		if err := c.mix.Add(a.Program); err != nil {
			panic(fmt.Sprintf("machine: admit arrival: %v", err))
		}
	}
}

// Step advances the simulation by one dispatch quantum on every CPU. It
// panics if the quantum cannot be accounted; drivers that must survive
// accounting failures use StepQuantum (or AdvanceTo/FastForwardQuanta),
// which surface a structured *StepError instead.
func (m *Machine) Step() {
	if err := m.StepQuantum(); err != nil {
		panic(err)
	}
}

// StepQuantum advances the simulation by one dispatch quantum on every
// CPU, returning a *StepError instead of panicking when energy
// accounting fails — the advance path the cluster coordinator and the
// DES drivers run on.
func (m *Machine) StepQuantum() error {
	m.admitArrivals()
	dt := m.cfg.Quantum
	// Contention couples through the *previous* quantum's traffic so each
	// step remains an explicit (non-fixed-point) update. prevRates is a
	// reused per-step scratch buffer (the Step hot path allocates nothing
	// in steady state).
	if cap(m.prevRates) < len(m.cpus) {
		m.prevRates = make([]float64, len(m.cpus))
	}
	m.prevRates = m.prevRates[:len(m.cpus)]
	for i, c := range m.cpus {
		m.prevRates[i] = c.last.PostL1Rate
	}
	for i, c := range m.cpus {
		m.stepCPU(i, c, dt, m.partnerRate(i, m.prevRates))
	}
	// Integrate energy at the post-actuation operating points.
	cpuP := m.TotalCPUPower()
	if err := m.cpuEnergy.Accumulate(cpuP, dt); err != nil {
		return m.stepError("cpu-energy", err)
	}
	if err := m.energy.Accumulate(m.cfg.NonCPU+cpuP, dt); err != nil {
		return m.stepError("system-energy", err)
	}
	m.clock.Tick()
	return nil
}

// partnerRate returns the shared-L2 partner's post-L1 rate for CPU i, or 0
// when the hierarchy has private L2s or the partner does not exist.
func (m *Machine) partnerRate(i int, rates []float64) float64 {
	if m.cfg.Hier.L2SharedBy < 2 {
		return 0
	}
	partner := i ^ 1
	if partner >= len(m.cpus) {
		return 0
	}
	return rates[partner]
}

func (m *Machine) stepCPU(i int, c *cpu, dt float64, partnerRate float64) {
	f := c.throt.Effective(m.clock.Now())
	stats := QuantumStats{Freq: f}
	avail := dt

	// The daemon's stolen time comes off the top of the quantum.
	if c.stolenDebt > 0 {
		steal := c.stolenDebt
		if steal > avail {
			steal = avail
		}
		c.stolenDebt -= steal
		avail -= steal
		// Stolen time still burns non-halted cycles (the daemon runs).
		burned := uint64(steal * f.Hz())
		c.totals.Cycles += burned
		stats.Cycles += burned
	}

	if f <= 0 {
		// Fully throttled: time passes, nothing retires.
		c.idleNow = c.mix == nil || c.mix.Done()
		c.last = stats
		return
	}

	latScale := m.quantumLatencyScale(partnerRate)
	var postL1Refs float64

	// Dispatch: run the picked job through the quantum, rolling to the
	// next job if it completes mid-quantum.
	for avail > 1e-12 {
		var job *workload.Cursor
		if c.mix != nil {
			job = c.mix.PickNext()
		}
		if job == nil {
			break
		}
		used, refs := m.execJob(c, job, f, latScale, avail, &stats)
		postL1Refs += refs
		avail -= used
		if !job.Done() {
			// Quantum expired inside the job — OS time-slice boundary.
			break
		}
		// Precise completion time: offset into the quantum already spent.
		done := JobCompletion{CPU: i, Program: job.Program().Name, At: m.clock.Now() + (dt - avail)}
		if m.completionHook != nil {
			m.completionHook(done)
		} else {
			m.completions = append(m.completions, done)
		}
		c.completions++
	}
	// The CPU is idle exactly when it has no runnable work left.
	c.idleNow = c.mix == nil || c.mix.Done()
	// Idle residue of the quantum.
	if avail > 1e-12 && c.idleNow {
		switch m.cfg.Idle {
		case IdleHot:
			used, refs := m.execJob(c, c.idleCursor, f, latScale, avail, &stats)
			postL1Refs += refs
			avail -= used
		case IdleHalt:
			halted := uint64(avail * f.Hz())
			c.totals.HaltedCycles += halted
			avail = 0
		}
	}

	stats.Idle = c.idleNow
	stats.PostL1Rate = postL1Refs / dt
	if !c.idleNow {
		c.busySeconds += dt
	}
	c.last = stats
}

// quantumLatencyScale draws this quantum's true memory-latency multiplier:
// shared-cache contention times lognormal-ish jitter, floored at 0.5.
func (m *Machine) quantumLatencyScale(partnerRate float64) float64 {
	scale := m.cfg.Contention.Factor(partnerRate, m.cfg.ContentionSatRefs)
	if m.cfg.LatencyJitterSigma > 0 {
		scale *= 1 + m.rng.NormFloat64()*m.cfg.LatencyJitterSigma
	}
	if scale < 0.5 {
		scale = 0.5
	}
	return scale
}

// execJob dispatches to the configured execution model.
func (m *Machine) execJob(c *cpu, job *workload.Cursor, f units.Frequency, latScale, avail float64, stats *QuantumStats) (used float64, postL1 float64) {
	if m.cfg.MonteCarloExec {
		return m.runJobMC(c, job, f, latScale, avail, stats)
	}
	return m.runJob(c, job, f, latScale, avail, stats)
}

// runJob executes cursor work at frequency f for at most avail seconds and
// returns the seconds consumed and post-L1 references generated. It updates
// the CPU's counters and the quantum stats.
func (m *Machine) runJob(c *cpu, job *workload.Cursor, f units.Frequency, latScale, avail float64, stats *QuantumStats) (used float64, postL1 float64) {
	for avail > 1e-12 && !job.Done() {
		phase := job.Current()
		cpi := phase.TrueCyclesPerInstr(m.cfg.Hier, f.Hz(), latScale)
		rate := f.Hz() / cpi // instructions per second
		budget := uint64(rate * avail)
		if budget == 0 {
			// Remaining sliver cannot retire one instruction; burn it.
			burned := uint64(avail * f.Hz())
			c.totals.Cycles += burned
			stats.Cycles += burned
			used += avail
			avail = 0
			break
		}
		n, _ := job.AdvanceWithinPhase(budget)
		dtUsed := float64(n) / rate
		cycles := uint64(dtUsed * f.Hz())
		l2 := uint64(float64(n) * phase.Rates.L2PerInstr)
		l3 := uint64(float64(n) * phase.Rates.L3PerInstr)
		mem := uint64(float64(n) * phase.Rates.MemPerInstr)

		c.totals.Instructions += n
		c.totals.Cycles += cycles
		c.totals.L2Refs += l2
		c.totals.L3Refs += l3
		c.totals.MemRefs += mem

		stats.Instructions += n
		stats.Cycles += cycles
		postL1 += float64(l2 + l3 + mem)
		used += dtUsed
		avail -= dtUsed
	}
	return used, postL1
}

// RunQuanta advances the simulation n quanta.
func (m *Machine) RunQuanta(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// RunUntil advances the simulation until simulation time t (inclusive of
// the quantum containing t).
func (m *Machine) RunUntil(t float64) {
	for m.clock.Now() < t {
		m.Step()
	}
}

// RunUntilAllDone advances until every assigned job completes or the
// deadline (simulation seconds) passes; it returns true when all jobs
// finished.
func (m *Machine) RunUntilAllDone(deadline float64) bool {
	for m.clock.Now() < deadline {
		if m.AllJobsDone() {
			return true
		}
		m.Step()
	}
	return m.AllJobsDone()
}
