package machine

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestBusySecondsAndUtilization(t *testing.T) {
	m := newQuiet(t)
	if m.Utilization(0) != 0 {
		t.Error("fresh machine should report zero utilization")
	}
	// CPU 0 busy with a long job; CPU 1 idle throughout.
	mix, err := workload.NewMix(workload.Program{
		Name:   "long",
		Phases: []workload.Phase{{Name: "c", Alpha: 1, Instructions: 1e12}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMix(0, mix); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(1.0)
	if got := m.Utilization(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("busy CPU utilization = %v, want 1", got)
	}
	if got := m.Utilization(1); got != 0 {
		t.Errorf("idle CPU utilization = %v, want 0", got)
	}
	if got := m.BusySeconds(0); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("BusySeconds = %v, want 1.0", got)
	}
}

func TestUtilizationPartial(t *testing.T) {
	m := newQuiet(t)
	// A job sized for ≈0.5 s at 1 GHz (α=1 → 1 cycle/instr).
	mix, err := workload.NewMix(workload.Program{
		Name:   "half",
		Phases: []workload.Phase{{Name: "c", Alpha: 1, Instructions: 5e8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMix(2, mix); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(1.0)
	got := m.Utilization(2)
	if got < 0.45 || got > 0.55 {
		t.Errorf("utilization = %v, want ≈0.5", got)
	}
}
