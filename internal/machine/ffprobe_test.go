package machine

import (
	"testing"

	"repro/internal/memhier"
)

func ffProbeCfg() Config {
	cfg := P630Config()
	cfg.NumCPUs = 4
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	cfg.Idle = IdleHalt
	cfg.Seed = 7
	return cfg
}

func BenchmarkStepQuantumIdle(b *testing.B) {
	m, err := New(ffProbeCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.StepQuantum(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastForwardIdleQuantum(b *testing.B) {
	m, err := New(ffProbeCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	n := b.N
	for n > 0 {
		k := 100000
		if k > n {
			k = n
		}
		if err := m.FastForwardQuanta(k, nil); err != nil {
			b.Fatal(err)
		}
		n -= k
	}
}
