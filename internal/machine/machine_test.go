package machine

import (
	"math"
	"testing"

	"repro/internal/counters"
	"repro/internal/memhier"
	"repro/internal/perfmodel"
	"repro/internal/units"
	"repro/internal/workload"
)

// quietConfig returns the p630 with all stochastic effects disabled, for
// exact assertions.
func quietConfig() Config {
	cfg := P630Config()
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	return cfg
}

func newQuiet(t *testing.T) *Machine {
	t.Helper()
	m, err := New(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cpuPhase(alpha float64, instr uint64) workload.Phase {
	return workload.Phase{Name: "cpu", Alpha: alpha, Instructions: instr}
}

func TestConfigValidate(t *testing.T) {
	good := P630Config()
	if err := good.Validate(); err != nil {
		t.Fatalf("P630Config invalid: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"cpus":    func(c *Config) { c.NumCPUs = 0 },
		"table":   func(c *Config) { c.Table = nil },
		"quantum": func(c *Config) { c.Quantum = 0 },
		"steps":   func(c *Config) { c.ThrottleSteps = 0 },
		"jitter":  func(c *Config) { c.LatencyJitterSigma = 0.9 },
		"noncpu":  func(c *Config) { c.NonCPU = -1 },
	} {
		cfg := P630Config()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestFreshMachineIdlesHotAtNominal(t *testing.T) {
	m := newQuiet(t)
	if m.NumCPUs() != 4 {
		t.Fatalf("NumCPUs = %d", m.NumCPUs())
	}
	m.RunQuanta(10)
	if math.Abs(m.Now()-0.1) > 1e-9 {
		t.Errorf("Now = %v, want 0.1", m.Now())
	}
	for i := 0; i < 4; i++ {
		if !m.IsIdle(i) {
			t.Errorf("cpu %d should be idle", i)
		}
		s, err := m.ReadCounters(i)
		if err != nil {
			t.Fatal(err)
		}
		// Hot idle retires instructions at IPC ≈ 1.3.
		if s.Instructions == 0 || s.Cycles == 0 {
			t.Fatalf("cpu %d: hot idle retired nothing: %+v", i, s)
		}
		ipc := float64(s.Instructions) / float64(s.Cycles)
		if math.Abs(ipc-1.3) > 0.01 {
			t.Errorf("cpu %d idle IPC = %v, want ≈1.3", i, ipc)
		}
	}
}

func TestHaltingIdleCountsHaltedCycles(t *testing.T) {
	cfg := quietConfig()
	cfg.Idle = IdleHalt
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.RunQuanta(5)
	s, _ := m.ReadCounters(0)
	if s.Instructions != 0 {
		t.Errorf("halting idle retired %d instructions", s.Instructions)
	}
	if s.HaltedCycles == 0 {
		t.Error("no halted cycles counted")
	}
	if !m.IsIdle(0) {
		t.Error("IsIdle = false")
	}
}

func TestWorkloadExecutionMatchesAnalyticModel(t *testing.T) {
	m := newQuiet(t)
	// One CPU-bound job: α=2, no memory → 0.5 cycles/instr at any f.
	// At 1 GHz for 1 s: 2e9 instructions.
	prog := workload.Program{Name: "j", Phases: []workload.Phase{cpuPhase(2, 1e12)}}
	mix, err := workload.NewMix(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMix(3, mix); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(1.0)
	s, _ := m.ReadCounters(3)
	if math.Abs(float64(s.Instructions)-2e9)/2e9 > 0.01 {
		t.Errorf("instructions = %d, want ≈2e9", s.Instructions)
	}
	if m.IsIdle(3) {
		t.Error("busy CPU reported idle")
	}
}

func TestMemoryBoundWorkloadSaturation(t *testing.T) {
	// The central physical mechanism: a DRAM-bound job completes almost
	// the same work per second at 650 MHz as at 1 GHz.
	run := func(f units.Frequency) uint64 {
		m := newQuiet(t)
		phase := workload.Phase{
			Name: "mem", Alpha: 1.1,
			Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.0186},
			Instructions: 1e12,
		}
		mix, _ := workload.NewMix(workload.Program{Name: "m", Phases: []workload.Phase{phase}})
		m.SetMix(0, mix)
		if err := m.SetFrequency(0, f); err != nil {
			t.Fatal(err)
		}
		m.RunUntil(1.0)
		s, _ := m.ReadCounters(0)
		return s.Instructions
	}
	full := run(units.GHz(1))
	slow := run(units.MHz(650))
	lost := 1 - float64(slow)/float64(full)
	if lost > 0.06 {
		t.Errorf("memory-bound job lost %.1f%% at 650MHz, want < 6%%", lost*100)
	}
	// A CPU-bound job, by contrast, loses ≈35%.
	runCPU := func(f units.Frequency) uint64 {
		m := newQuiet(t)
		mix, _ := workload.NewMix(workload.Program{Name: "c", Phases: []workload.Phase{cpuPhase(1.4, 1e12)}})
		m.SetMix(0, mix)
		m.SetFrequency(0, f)
		m.RunUntil(1.0)
		s, _ := m.ReadCounters(0)
		return s.Instructions
	}
	cpuLost := 1 - float64(runCPU(units.MHz(650)))/float64(runCPU(units.GHz(1)))
	if math.Abs(cpuLost-0.35) > 0.02 {
		t.Errorf("CPU-bound job lost %.1f%% at 650MHz, want ≈35%%", cpuLost*100)
	}
}

func TestSetFrequencyActuatesThroughThrottle(t *testing.T) {
	m := newQuiet(t)
	if err := m.SetFrequency(1, units.MHz(500)); err != nil {
		t.Fatal(err)
	}
	if got := m.EffectiveFrequency(1); math.Abs(got.MHz()-500) > 11 {
		t.Errorf("effective = %v, want ≈500MHz (within quantisation)", got)
	}
	if err := m.SetFrequency(1, units.GHz(2)); err == nil {
		t.Error("above-nominal frequency accepted")
	}
	if err := m.SetFrequency(99, units.MHz(500)); err == nil {
		t.Error("bad cpu index accepted")
	}
}

func TestPowerAccounting(t *testing.T) {
	m := newQuiet(t)
	// All four CPUs at nominal: 4×140 W + 186 W base = 746 W (§2).
	if got := m.SystemPower(); math.Abs(got.W()-746) > 1e-9 {
		t.Errorf("system power = %v, want 746W", got)
	}
	if got := m.TotalCPUPower(); math.Abs(got.W()-560) > 1e-9 {
		t.Errorf("CPU power = %v, want 560W", got)
	}
	// Throttle one CPU to 500 MHz → 35 W.
	m.SetFrequency(0, units.MHz(500))
	if got := m.CPUPower(0); math.Abs(got.W()-35) > 2 {
		t.Errorf("CPU0 power at 500MHz = %v, want ≈35W", got)
	}
	if got := m.MeasuredSystemPower(); got != m.SystemPower() {
		t.Errorf("noiseless measured power %v != true %v", got, m.SystemPower())
	}
}

func TestEnergyIntegration(t *testing.T) {
	m := newQuiet(t)
	m.RunQuanta(100) // 1 s at 746 W
	if got := m.Energy().J(); math.Abs(got-746) > 1 {
		t.Errorf("energy = %v J, want ≈746", got)
	}
	if got := m.CPUEnergy().J(); math.Abs(got-560) > 1 {
		t.Errorf("CPU energy = %v J, want ≈560", got)
	}
}

func TestJobCompletionRecorded(t *testing.T) {
	m := newQuiet(t)
	prog := workload.Program{Name: "quick", Phases: []workload.Phase{cpuPhase(1, 1e6)}}
	mix, _ := workload.NewMix(prog)
	m.SetMix(2, mix)
	if ok := m.RunUntilAllDone(1.0); !ok {
		t.Fatal("job did not complete")
	}
	comps := m.Completions()
	if len(comps) != 1 || comps[0].CPU != 2 || comps[0].Program != "quick" {
		t.Errorf("completions = %+v", comps)
	}
	if comps[0].At > 0.02 {
		t.Errorf("1e6 instructions took %v s", comps[0].At)
	}
}

func TestPredictorSeesAccurateCountersOnQuietMachine(t *testing.T) {
	// End-to-end closure: run a known workload, sample counters, decompose,
	// and check the prediction matches a run at the predicted frequency.
	m := newQuiet(t)
	rates := memhier.AccessRates{L2PerInstr: 0.02, MemPerInstr: 0.008}
	phase := workload.Phase{Name: "p", Alpha: 1.2, Rates: rates, Instructions: 1e12}
	mix, _ := workload.NewMix(workload.Program{Name: "w", Phases: []workload.Phase{phase}})
	m.SetMix(0, mix)

	before, _ := m.ReadCounters(0)
	m.RunQuanta(10)
	after, _ := m.ReadCounters(0)
	delta, err := after.Sub(before)
	if err != nil {
		t.Fatal(err)
	}
	p, err := perfmodel.New(memhier.P630())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := p.Decompose(perfmodel.Observation{Delta: delta, Freq: units.GHz(1)})
	if err != nil {
		t.Fatal(err)
	}
	wantStall := rates.StallTimePerInstr(memhier.P630())
	if math.Abs(dec.StallSecPerInstr-wantStall)/wantStall > 0.02 {
		t.Errorf("recovered stall %v, want %v", dec.StallSecPerInstr, wantStall)
	}
	// The recovered α is biased slightly low by the non-mem stalls the
	// counters cannot see — here zero, so it should be near-exact.
	if math.Abs(1/dec.InvAlpha-1.2) > 0.05 {
		t.Errorf("recovered alpha %v, want ≈1.2", 1/dec.InvAlpha)
	}
}

func TestStealTimeReducesThroughput(t *testing.T) {
	run := func(steal bool) uint64 {
		m := newQuiet(t)
		mix, _ := workload.NewMix(workload.Program{Name: "c", Phases: []workload.Phase{cpuPhase(1.4, 1e12)}})
		m.SetMix(0, mix)
		for q := 0; q < 100; q++ {
			if steal {
				m.StealTime(0, 0.001) // 10% of each quantum
			}
			m.Step()
		}
		s, _ := m.ReadCounters(0)
		return s.Instructions
	}
	clean, stolen := run(false), run(true)
	ratio := float64(stolen) / float64(clean)
	if math.Abs(ratio-0.9) > 0.01 {
		t.Errorf("stolen/clean = %v, want ≈0.9", ratio)
	}
	m := newQuiet(t)
	if err := m.StealTime(0, -1); err == nil {
		t.Error("negative steal accepted")
	}
	if err := m.StealTime(9, 1); err == nil {
		t.Error("bad cpu steal accepted")
	}
}

func TestMultiprogrammedAggregation(t *testing.T) {
	// Two jobs time-sliced on one CPU: the counters show the aggregate.
	m := newQuiet(t)
	cpu := workload.Program{Name: "cpu", Phases: []workload.Phase{cpuPhase(1.4, 1e12)}}
	mem := workload.Program{Name: "mem", Phases: []workload.Phase{{
		Name: "m", Alpha: 1.1,
		Rates:        memhier.AccessRates{MemPerInstr: 0.02},
		Instructions: 1e12,
	}}}
	mix, _ := workload.NewMix(cpu, mem)
	m.SetMix(0, mix)
	m.RunQuanta(100)
	s, _ := m.ReadCounters(0)
	memRate := float64(s.MemRefs) / float64(s.Instructions)
	// Aggregate rate must sit strictly between the two jobs' rates.
	if memRate <= 0 || memRate >= 0.02 {
		t.Errorf("aggregate mem rate = %v, want in (0, 0.02)", memRate)
	}
}

func TestContentionSlowsSharedL2Partner(t *testing.T) {
	cfg := quietConfig()
	cfg.Contention = memhier.Contention{MaxInflation: 1.3}
	memProg := func(name string) workload.Program {
		return workload.Program{Name: name, Phases: []workload.Phase{{
			Name: "m", Alpha: 1.1,
			Rates:        memhier.AccessRates{MemPerInstr: 0.02},
			Instructions: 1e12,
		}}}
	}
	// Run the probe job alone on CPU0...
	alone, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mixA, _ := workload.NewMix(memProg("probe"))
	alone.SetMix(0, mixA)
	alone.RunUntil(1.0)
	sAlone, _ := alone.ReadCounters(0)

	// ...and with a memory-hog partner on CPU1 (shares the L2).
	together, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mixB, _ := workload.NewMix(memProg("probe"))
	hog, _ := workload.NewMix(memProg("hog"))
	together.SetMix(0, mixB)
	together.SetMix(1, hog)
	together.RunUntil(1.0)
	sTogether, _ := together.ReadCounters(0)

	if sTogether.Instructions >= sAlone.Instructions {
		t.Errorf("contention had no effect: %d >= %d", sTogether.Instructions, sAlone.Instructions)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() counters.Sample {
		cfg := P630Config() // full noise, fixed seed
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mix, _ := workload.NewMix(workload.Mcf(0.05))
		m.SetMix(0, mix)
		m.RunQuanta(200)
		s, _ := m.ReadCounters(0)
		return s
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestReadCountersBounds(t *testing.T) {
	m := newQuiet(t)
	if _, err := m.ReadCounters(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := m.ReadCounters(4); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := m.SetMix(17, nil); err == nil {
		t.Error("SetMix out of range accepted")
	}
}

func TestRunUntilAllDoneDeadline(t *testing.T) {
	m := newQuiet(t)
	mix, _ := workload.NewMix(workload.Program{Name: "long", Phases: []workload.Phase{cpuPhase(1, 1e15)}})
	m.SetMix(0, mix)
	if m.RunUntilAllDone(0.05) {
		t.Error("impossibly long job reported done")
	}
}

func TestZeroFrequencyStallsCPU(t *testing.T) {
	m := newQuiet(t)
	mix, _ := workload.NewMix(workload.Program{Name: "j", Phases: []workload.Phase{cpuPhase(1, 1e9)}})
	m.SetMix(0, mix)
	m.SetFrequency(0, 0)
	m.RunQuanta(10)
	s, _ := m.ReadCounters(0)
	if s.Instructions != 0 {
		t.Errorf("fully throttled CPU retired %d instructions", s.Instructions)
	}
	// Frequency zero means powered off: no draw at all, unlike the 250 MHz
	// floor's 9 W.
	if p := m.CPUPower(0); p != 0 {
		t.Errorf("powered-down CPU draws %v, want 0", p)
	}
	if got := m.TotalCPUPower(); got.W() != 3*140 {
		t.Errorf("total = %v, want 420W (three at nominal, one off)", got)
	}
}

// TestCompletionHook: a hook diverts completions from the slice, sees
// the same interpolated timestamps, and can install follow-on work that
// runs within the same quantum (the serving station's work-conserving
// dispatch).
func TestCompletionHook(t *testing.T) {
	prog := func(name string, instr uint64) workload.Program {
		return workload.Program{Name: name, Phases: []workload.Phase{{Name: "p", Alpha: 1.3, Instructions: instr}}}
	}
	// Reference run without a hook.
	ref := newQuiet(t)
	if err := ref.SetMix(0, workload.MustMix(prog("a", 1e6))); err != nil {
		t.Fatal(err)
	}
	ref.RunQuanta(5)
	refDone := ref.Completions()
	if len(refDone) != 1 {
		t.Fatalf("reference completions = %d", len(refDone))
	}

	// Hooked run: same job, then the hook chains a second job in place.
	m := newQuiet(t)
	mix := workload.MustMix(prog("a", 1e6))
	cur := mix.Jobs()[0]
	if err := m.SetMix(0, mix); err != nil {
		t.Fatal(err)
	}
	var got []JobCompletion
	m.SetCompletionHook(func(jc JobCompletion) {
		got = append(got, jc)
		if len(got) == 1 {
			cur.Rebind(prog("b", 1e6))
		}
	})
	m.RunQuanta(5)
	if len(m.Completions()) != 0 {
		t.Errorf("hooked machine still recorded %d completions in the slice", len(m.Completions()))
	}
	if len(got) != 2 {
		t.Fatalf("hook saw %d completions, want 2 (chained job must run)", len(got))
	}
	if got[0].Program != "a" || got[1].Program != "b" {
		t.Errorf("hook order: %+v", got)
	}
	if got[0].At != refDone[0].At {
		t.Errorf("hooked completion at %v, reference at %v", got[0].At, refDone[0].At)
	}
	// Job b started the instant a finished, so it completed inside the
	// same quantum (equal length, same frequency).
	if got[1].At >= got[0].At+m.Config().Quantum {
		t.Errorf("chained job completed at %v, not within the quantum after %v", got[1].At, got[0].At)
	}
	// Clearing the hook restores slice recording.
	m.SetCompletionHook(nil)
	cur.Rebind(prog("c", 1e6))
	m.RunQuanta(5)
	if len(m.Completions()) != 1 {
		t.Errorf("after clearing hook, completions = %d, want 1", len(m.Completions()))
	}
}
