package machine

import (
	"math"
	"math/rand"

	"repro/internal/units"
	"repro/internal/workload"
)

// Monte-Carlo execution mode: instead of charging each instruction the
// closed-form expected CPI, the machine draws per-block reference counts
// from the phase's rates (Poisson approximation of the per-instruction
// Bernoulli draws — exact to within O(p) for the sub-percent rates real
// workloads have) and sums individual service times. Execution-time
// variance then emerges from the discreteness of misses rather than from
// the injected latency jitter, giving a second, independent source of the
// predictor noise studied in Table 2. Roughly two orders of magnitude
// slower than the analytic mode; used for validation runs.

// mcBlock is the instruction block sharing one draw.
const mcBlock = 4096

// poisson draws Poisson(λ) — Knuth's product method for small λ, normal
// approximation beyond (λ > 64 keeps the approximation error far below
// the rates' natural variance).
func poisson(rng *rand.Rand, lambda float64) uint64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return uint64(v + 0.5)
	}
	limit := math.Exp(-lambda)
	p := 1.0
	var k uint64
	for {
		p *= rng.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// runJobMC is the Monte-Carlo counterpart of runJob: it executes cursor
// work for at most avail seconds at frequency f, drawing reference counts
// per block. Cycle overshoot past the quantum boundary (at most one
// block's worth) is carried as stolen-time debt into the next quantum so
// long-run time accounting stays exact.
func (m *Machine) runJobMC(c *cpu, job *workload.Cursor, f units.Frequency, latScale, avail float64, stats *QuantumStats) (used float64, postL1 float64) {
	h := m.cfg.Hier
	tL2, tL3, tMem := h.ServiceTimes()
	budgetCycles := avail * f.Hz()
	var consumed float64
	for consumed < budgetCycles && !job.Done() {
		phase := job.Current()
		n, _ := job.AdvanceWithinPhase(mcBlock)
		if n == 0 {
			break
		}
		nf := float64(n)
		core := (1/phase.Alpha + phase.NonMemStallCyclesPerInstr) * nf
		l2 := poisson(m.rng, nf*phase.Rates.L2PerInstr)
		l3 := poisson(m.rng, nf*phase.Rates.L3PerInstr)
		mem := poisson(m.rng, nf*phase.Rates.MemPerInstr)
		memSeconds := latScale * (float64(l2)*tL2 + float64(l3)*tL3 + float64(mem)*tMem)
		cyc := core + memSeconds*f.Hz()
		consumed += cyc

		c.totals.Instructions += n
		c.totals.Cycles += uint64(cyc)
		c.totals.L2Refs += l2
		c.totals.L3Refs += l3
		c.totals.MemRefs += mem
		stats.Instructions += n
		stats.Cycles += uint64(cyc)
		postL1 += float64(l2 + l3 + mem)
	}
	if consumed > budgetCycles {
		// Carry the overshoot into the next quantum as debt.
		c.stolenDebt += (consumed - budgetCycles) / f.Hz()
		consumed = budgetCycles
	}
	return consumed / f.Hz(), postL1
}
