// Variable-dt advancement: the discrete-event fast path over the quantum
// engine. AdvanceTo and FastForwardQuanta advance a machine many quanta
// at a time while remaining byte-identical to repeated Step calls — the
// contract the quantum-vs-DES differential driver pins.
//
// The mechanism is probe-and-replay, with Step as the only executor of
// simulated work: when the machine is in a steady span (no runnable or
// pending work, no settling throttle, no RNG consumption per quantum),
// two consecutive quanta are run through the real Step path; if they
// produce identical counter deltas and quantum stats, every further
// quantum in the span is that same pure function of state, so the span
// is replayed in bulk — integer counter additions, one idle-cursor
// advance, and the exact per-quantum floating-point accumulations on the
// clock and both energy meters (repeated addition is observable;
// summing once would round differently). Anything the probes cannot
// certify — jitter draws, Monte-Carlo execution, arrivals maturing,
// idle-loop phase wrap — falls back to per-quantum stepping, so the fast
// path is an optimisation, never a semantic.
package machine

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/units"
)

// StepError is the structured failure the advance paths surface when a
// quantum cannot be accounted (energy integration rejecting its inputs),
// instead of crashing mid-simulation. Only the legacy Step wrapper still
// panics, preserving its historical contract.
type StepError struct {
	Machine string
	At      float64
	Op      string
	Err     error
}

// Error implements error.
func (e *StepError) Error() string {
	return fmt.Sprintf("machine %s: %s at t=%v: %v", e.Machine, e.Op, e.At, e.Err)
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *StepError) Unwrap() error { return e.Err }

func (m *Machine) stepError(op string, err error) error {
	return &StepError{Machine: m.cfg.Name, At: m.clock.Now(), Op: op, Err: err}
}

// NextArrivalAt returns the due time of the earliest pending submission —
// the machine's next externally interesting time on a DES timeline — and
// false when no arrivals are pending.
func (m *Machine) NextArrivalAt() (float64, bool) {
	if len(m.arrivals) == 0 {
		return 0, false
	}
	return m.arrivals[0].At, true
}

// quantumDelta is one probe measurement: what a single Step changed on
// one CPU, plus the state needed to certify that replaying it is exact.
type quantumDelta struct {
	d    counters.Sample // per-quantum counter delta (Time unused)
	last QuantumStats    // the stats the quantum produced
	rem  uint64          // idle-cursor instructions left in phase after the probe
}

func subSample(a, b counters.Sample) counters.Sample {
	return counters.Sample{
		Instructions: a.Instructions - b.Instructions,
		Cycles:       a.Cycles - b.Cycles,
		HaltedCycles: a.HaltedCycles - b.HaltedCycles,
		L2Refs:       a.L2Refs - b.L2Refs,
		L3Refs:       a.L3Refs - b.L3Refs,
		MemRefs:      a.MemRefs - b.MemRefs,
	}
}

func addSampleN(dst *counters.Sample, d counters.Sample, n uint64) {
	dst.Instructions += d.Instructions * n
	dst.Cycles += d.Cycles * n
	dst.HaltedCycles += d.HaltedCycles * n
	dst.L2Refs += d.L2Refs * n
	dst.L3Refs += d.L3Refs * n
	dst.MemRefs += d.MemRefs * n
}

// steadyEligible reports whether the machine's next quantum is a pure
// function of its current per-quantum state — the precondition for
// probe-and-replay. It requires: no matured or runnable work, no stolen
// daemon time, no throttle still settling, and no RNG consumption per
// quantum. RNG is consumed by the latency-jitter draw whenever any CPU
// runs at f > 0, and by Monte-Carlo execution when the hot idle loop
// actually executes, so those configurations are only eligible fully
// throttled.
func (m *Machine) steadyEligible() bool {
	now := m.clock.Now()
	if len(m.arrivals) > 0 && m.arrivals[0].At <= now {
		return false
	}
	anyHot := false
	for _, c := range m.cpus {
		if c.mix != nil && !c.mix.Done() {
			return false
		}
		if c.stolenDebt > 0 {
			return false
		}
		if c.throt.Settling(now) {
			return false
		}
		if c.throt.Effective(now) > 0 {
			anyHot = true
		}
	}
	if anyHot {
		if m.cfg.LatencyJitterSigma != 0 {
			return false
		}
		if m.cfg.Idle == IdleHot && m.cfg.MonteCarloExec {
			return false
		}
	}
	return true
}

// FastForwardQuanta advances exactly n dispatch quanta, equivalent —
// byte for byte on counters, energy, clock, completions and RNG state —
// to n iterations of { StepQuantum(); after() }. after (which may be
// nil) runs at the end of every quantum with the machine fully advanced,
// the hook a sampler collecting per-quantum windows hangs on; it must
// observe the machine only, not mutate it. Steady spans are replayed in
// bulk; everything else steps.
func (m *Machine) FastForwardQuanta(n int, after func() error) error {
	if n < 0 {
		return m.stepError("fast-forward", fmt.Errorf("negative quantum count %d", n))
	}
	for n > 0 {
		k, err := m.fastForwardSpan(n, after)
		if err != nil {
			return err
		}
		n -= k
	}
	return nil
}

// fastForwardSpan advances between 1 and n quanta and reports how many.
func (m *Machine) fastForwardSpan(n int, after func() error) (int, error) {
	stepOne := func() error {
		if err := m.StepQuantum(); err != nil {
			return err
		}
		if after != nil {
			return after()
		}
		return nil
	}
	// A replay only pays for itself past two probe quanta.
	if n < 3 || !m.steadyEligible() {
		if err := stepOne(); err != nil {
			return 0, err
		}
		return 1, nil
	}
	if cap(m.ffBase) < len(m.cpus) {
		m.ffBase = make([]counters.Sample, len(m.cpus))
		m.ffProbe = make([]quantumDelta, len(m.cpus))
	}
	m.ffBase = m.ffBase[:len(m.cpus)]
	m.ffProbe = m.ffProbe[:len(m.cpus)]

	// Probe 1: a real quantum, measured. Its delta may still carry
	// transients (contention coupling reaches steady state one quantum
	// after the workload does), so it only anchors the comparison.
	for i, c := range m.cpus {
		m.ffBase[i] = c.totals
	}
	if err := stepOne(); err != nil {
		return 0, err
	}
	for i, c := range m.cpus {
		m.ffProbe[i] = quantumDelta{d: subSample(c.totals, m.ffBase[i]), last: c.last, rem: c.idleCursor.RemainingInPhase()}
	}
	done := 1

	// Probe 2: certify. If it reproduces probe 1 exactly, the quantum is
	// a fixed point of the machine state and replaying it is exact.
	for i, c := range m.cpus {
		m.ffBase[i] = c.totals
	}
	if err := stepOne(); err != nil {
		return done, err
	}
	done = 2
	steady := m.steadyEligible()
	for i, c := range m.cpus {
		p := &m.ffProbe[i]
		d := subSample(c.totals, m.ffBase[i])
		rem := c.idleCursor.RemainingInPhase()
		if d != p.d || c.last != p.last || rem != p.rem-d.Instructions {
			steady = false
		}
	}
	if !steady {
		return done, nil
	}

	// Bound the replay: stop a full quantum short of the next arrival
	// (float-safe: probes and fallback steps absorb the boundary), and
	// keep every idle cursor comfortably inside its current phase so
	// each replayed quantum sees the same in-phase headroom the probes
	// did.
	k := n - done
	if len(m.arrivals) > 0 {
		if kArr := int((m.arrivals[0].At-m.clock.Now())/m.cfg.Quantum) - 1; kArr < k {
			k = kArr
		}
	}
	for i := range m.cpus {
		p := &m.ffProbe[i]
		dI := p.d.Instructions
		if dI == 0 {
			continue
		}
		rem := m.cpus[i].idleCursor.RemainingInPhase()
		if rem < 2*dI+2 {
			k = 0
			break
		}
		if kc := int((rem - 2*dI - 2) / dI); kc < k {
			k = kc
		}
	}
	if k <= 0 {
		return done, nil
	}

	// Replay: the certified quantum, k times. Integer counter work is
	// batched; the clock and energy meters run their per-quantum float
	// additions so accumulated rounding matches the stepped engine bit
	// for bit.
	dt := m.cfg.Quantum
	cpuP := m.TotalCPUPower()
	sysP := m.cfg.NonCPU + cpuP
	if after == nil {
		for i, c := range m.cpus {
			p := &m.ffProbe[i]
			addSampleN(&c.totals, p.d, uint64(k))
			if p.d.Instructions > 0 {
				c.idleCursor.AdvanceWithinPhase(p.d.Instructions * uint64(k))
			}
		}
		// Validate exactly as the per-meter calls would, then run all five
		// accumulator chains (two meters' energy+elapsed, the clock) in one
		// fused loop: each chain still performs its per-quantum addition in
		// sequence — bit-identical to k separate Accumulate/Tick calls —
		// but the independent chains overlap in the pipeline instead of
		// running back to back.
		if err := m.cpuEnergy.AccumulateRepeat(cpuP, dt, 0); err != nil {
			return done, m.stepError("cpu-energy", err)
		}
		if err := m.energy.AccumulateRepeat(sysP, dt, 0); err != nil {
			return done, m.stepError("system-energy", err)
		}
		cpuT, cpuN := m.cpuEnergy.ReplayCells()
		sysT, sysN := m.energy.ReplayCells()
		nowC := m.clock.ReplayCell()
		cpuInc := units.EnergyOver(cpuP, dt)
		sysInc := units.EnergyOver(sysP, dt)
		q := m.clock.Quantum()
		ct, cn, st, sn, now := *cpuT, *cpuN, *sysT, *sysN, *nowC
		for j := 0; j < k; j++ {
			ct += cpuInc
			cn += dt
			st += sysInc
			sn += dt
			now += q
		}
		*cpuT, *cpuN, *sysT, *sysN, *nowC = ct, cn, st, sn, now
		return done + k, nil
	}
	for j := 0; j < k; j++ {
		for i, c := range m.cpus {
			p := &m.ffProbe[i]
			addSampleN(&c.totals, p.d, 1)
			if p.d.Instructions > 0 {
				c.idleCursor.AdvanceWithinPhase(p.d.Instructions)
			}
		}
		if err := m.cpuEnergy.Accumulate(cpuP, dt); err != nil {
			return done, m.stepError("cpu-energy", err)
		}
		if err := m.energy.Accumulate(sysP, dt); err != nil {
			return done, m.stepError("system-energy", err)
		}
		m.clock.Tick()
		done++
		if err := after(); err != nil {
			return done, err
		}
	}
	return done, nil
}

// AdvanceTo advances the machine to simulation time t — inclusive of the
// quantum containing t, exactly like RunUntil — fast-forwarding steady
// spans. The result is byte-identical to RunUntil(t) on every
// configuration; the only difference is wall-clock cost.
func (m *Machine) AdvanceTo(t float64) error {
	for m.clock.Now() < t {
		n := int((t - m.clock.Now()) / m.cfg.Quantum)
		if n < 1 {
			n = 1
		}
		if err := m.FastForwardQuanta(n, nil); err != nil {
			return err
		}
	}
	return nil
}
