package machine

import (
	"testing"

	"repro/internal/memhier"
	"repro/internal/workload"
)

// hotPathMachine is a p630 with an endless workload on every CPU so no
// quantum completes a job (completions append to the machine's log).
// Noise stays on: the RNG draw is part of the steady-state step.
func hotPathMachine(tb testing.TB) *Machine {
	tb.Helper()
	m, err := New(P630Config())
	if err != nil {
		tb.Fatal(err)
	}
	prog := workload.Program{Name: "endless", Phases: []workload.Phase{{
		Name: "p", Alpha: 1.2,
		Rates:        memhier.AccessRates{L2PerInstr: 0.02, L3PerInstr: 0.004, MemPerInstr: 0.01},
		Instructions: 1e15,
	}}}
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		mix, err := workload.NewMix(prog)
		if err != nil {
			tb.Fatal(err)
		}
		if err := m.SetMix(cpu, mix); err != nil {
			tb.Fatal(err)
		}
	}
	m.RunUntil(20) // reach steady state
	return m
}

// TestStepZeroAlloc pins the other half of the hot-path guarantee: a
// steady-state dispatch quantum allocates nothing.
func TestStepZeroAlloc(t *testing.T) {
	m := hotPathMachine(t)
	allocs := testing.AllocsPerRun(200, func() { m.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %v per quantum, want 0", allocs)
	}
}

// BenchmarkMachineStep measures one dispatch quantum across the four CPUs.
func BenchmarkMachineStep(b *testing.B) {
	m := hotPathMachine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}
