package machine

import (
	"testing"

	"repro/internal/workload"
)

func reqJob(instr uint64) workload.Program {
	return workload.Program{
		Name:   "req",
		Phases: []workload.Phase{{Name: "serve", Alpha: 1.2, Instructions: instr}},
	}
}

func TestSubmitDeliversArrivalsOnTime(t *testing.T) {
	m := newQuiet(t)
	sched := workload.Schedule{
		{At: 0.05, CPU: 0, Program: reqJob(1e8)}, // ≈80 ms of work each
		{At: 0.15, CPU: 0, Program: reqJob(1e8)},
		{At: 0.10, CPU: 1, Program: reqJob(1e8)},
	}
	if err := m.Submit(sched); err != nil {
		t.Fatal(err)
	}
	if m.PendingArrivals() != 3 {
		t.Fatalf("pending = %d", m.PendingArrivals())
	}
	if m.AllJobsDone() {
		t.Error("machine with pending arrivals reported done")
	}
	// Before the first arrival: CPU 0 idle.
	m.RunUntil(0.04)
	if !m.IsIdle(0) {
		t.Error("cpu0 busy before its arrival")
	}
	m.RunUntil(0.06)
	if m.IsIdle(0) {
		t.Error("cpu0 idle after its arrival")
	}
	// Run everything out.
	if !m.RunUntilAllDone(2.0) {
		t.Fatal("jobs did not finish")
	}
	comps := m.Completions()
	if len(comps) != 3 {
		t.Fatalf("completions = %d", len(comps))
	}
	// Causality per CPU: by any time t, completions cannot outnumber
	// arrivals.
	for _, c := range comps {
		arrived, completed := 0, 0
		for _, a := range sched {
			if a.CPU == c.CPU && a.At <= c.At {
				arrived++
			}
		}
		for _, c2 := range comps {
			if c2.CPU == c.CPU && c2.At <= c.At {
				completed++
			}
		}
		if completed > arrived {
			t.Errorf("cpu %d: %d completions by %v but only %d arrivals", c.CPU, completed, c.At, arrived)
		}
	}
}

func TestSubmitIntoRunningMix(t *testing.T) {
	m := newQuiet(t)
	mix, err := workload.NewMix(reqJob(1e9))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMix(0, mix); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(workload.Schedule{{At: 0.02, CPU: 0, Program: reqJob(1e6)}}); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(0.5)
	if len(mix.Jobs()) != 2 {
		t.Errorf("mix jobs = %d, want 2 after arrival", len(mix.Jobs()))
	}
	// The short arrival completes while the long original keeps running.
	done := 0
	for _, c := range m.Completions() {
		if c.Program == "req" {
			done++
		}
	}
	if done != 1 {
		t.Errorf("completions = %d, want the short job done", done)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newQuiet(t)
	if err := m.Submit(workload.Schedule{{At: 0.1, CPU: 99, Program: reqJob(1)}}); err == nil {
		t.Error("out-of-range CPU accepted")
	}
	if err := m.Submit(workload.Schedule{{At: -1, CPU: 0, Program: reqJob(1)}}); err == nil {
		t.Error("negative arrival time accepted")
	}
	if m.PendingArrivals() != 0 {
		t.Error("rejected arrivals were queued")
	}
}

func TestPastArrivalAdmittedImmediately(t *testing.T) {
	m := newQuiet(t)
	m.RunUntil(0.2)
	if err := m.Submit(workload.Schedule{{At: 0.05, CPU: 2, Program: reqJob(1e6)}}); err != nil {
		t.Fatal(err)
	}
	m.Step()
	if m.IsIdle(2) && m.PendingArrivals() > 0 {
		t.Error("past-dated arrival not admitted at next step")
	}
}
